open Conddep_relational
open Conddep_core

(** Random constraint workloads (Section 6).

    Two families, as in the paper: {e consistent} sets — satisfied by a
    hidden witness tuple per relation, one shared value per attribute name —
    and {e random} sets whose constants may conflict.  Plus the harder
    {e needle} CFD family used by the Fig 10(b) accuracy sweep, and a
    dirty-database generator for the cleaning examples. *)

type config = {
  num_constraints : int;
  cfd_fraction : float;  (** CFD share of Σ (the paper uses 0.75) *)
  consts_per_attr : int;  (** constant-pool size per infinite attribute *)
  max_lhs : int;  (** maximum |X| *)
  max_pattern : int;  (** maximum |Xp| / |Yp| *)
}

val default : config

val witness_value : Attribute.t -> Value.t
(** The hidden witness value of an attribute (shared across relations). *)

val const_pool : config -> Attribute.t -> Value.t list
(** Pattern constants available on an attribute; includes the witness. *)

val consistent : Rng.t -> config -> Db_schema.t -> Sigma.nf
(** A consistent constraint set: {!witness_db} satisfies it by
    construction (property-tested). *)

val random : Rng.t -> config -> Db_schema.t -> Sigma.nf
(** An unconstrained random set; may be inconsistent. *)

val witness_db : Db_schema.t -> Database.t
(** The one-tuple-per-relation database the consistent generator
    guarantees. *)

val cfds_only : Rng.t -> config -> Db_schema.t -> consistent:bool -> Sigma.nf
(** CFD-only workloads for the Fig 10 experiments. *)

val needle_cfds : Rng.t -> Db_schema.t -> Sigma.nf
(** Hard CFD sets for Fig 10(b): per relation, (almost) a single satisfying
    assignment of the finite-domain attributes exists, so bounded-K random
    valuation search fails with probability ≈ (1 - p)^K. *)

val dirty_database :
  Rng.t -> Db_schema.t -> tuples_per_rel:int -> error_rate:float -> Database.t
(** Clean-ish rows with a fraction of corrupted fields, for the cleaning
    examples. *)

val gen_cfd : Rng.t -> config -> Db_schema.t -> consistent:bool -> int -> Cfd.nf
val gen_cind : Rng.t -> config -> Db_schema.t -> consistent:bool -> int -> Cind.nf
