lib/matching/mapping.ml: Attribute Cind Conddep_core Conddep_relational Database Db_schema Domain List Printf Relation Schema String Tuple Value
