lib/matching/mapping.mli: Attribute Cind Conddep_core Conddep_relational Database Db_schema Tuple Value
