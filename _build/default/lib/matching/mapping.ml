open Conddep_relational
open Conddep_core

(* Contextual schema matching (Example 1.1, after [7]): a CIND from a
   source to a target schema doubles as an executable mapping.  For every
   source tuple matching the Xp pattern, a target tuple is emitted carrying
   the X values on Y, the Yp constants, and Skolem defaults elsewhere.
   Executing all mappings yields the canonical target instance; by
   construction it satisfies the driving CINDs, which [verify] checks. *)

type field_default = Db_schema.t -> Attribute.t -> Tuple.t -> Value.t

(* Default Skolemization: an unused field takes a fresh-ish value derived
   from the attribute (or the first member of a finite domain). *)
let skolem : field_default =
 fun _schema attr _src ->
  match Domain.values (Attribute.domain attr) with
  | Some (v :: _) -> v
  | _ -> Value.Str (Printf.sprintf "sk_%s" (Attribute.name attr))

(* Target tuples one CIND emits for one source tuple (empty when the tuple
   does not match the pattern). *)
let migrate_tuple ?(default = skolem) schema (nf : Cind.nf) src =
  let r1 = Db_schema.find schema nf.Cind.nf_lhs in
  let r2 = Db_schema.find schema nf.nf_rhs in
  let triggers =
    List.for_all
      (fun (a, v) -> Value.equal (Tuple.get src (Schema.position r1 a)) v)
      nf.nf_xp
  in
  if not triggers then None
  else
    let fields =
      List.map
        (fun attr ->
          let name = Attribute.name attr in
          match List.assoc_opt name nf.nf_yp with
          | Some v -> v
          | None -> (
              match
                List.find_opt (fun (_, b) -> String.equal b name)
                  (List.combine nf.nf_x nf.nf_y)
              with
              | Some (a, _) -> Tuple.get src (Schema.position r1 a)
              | None -> default schema attr src))
        (Schema.attrs r2)
    in
    Some (Tuple.make fields)

(* Execute a set of CIND mappings over a database: add every required
   target tuple.  Existing target tuples are kept (set semantics). *)
let execute ?default schema cinds db =
  List.fold_left
    (fun db nf ->
      let src_rel = Database.relation db nf.Cind.nf_lhs in
      Relation.fold
        (fun src db ->
          match migrate_tuple ?default schema nf src with
          | Some target -> Database.add_tuple db nf.nf_rhs target
          | None -> db)
        src_rel db)
    db cinds

(* After execution every driving CIND must hold. *)
let verify db cinds = List.for_all (Cind.nf_holds db) cinds

(* The coverage of a mapping: how many source tuples each CIND migrates —
   useful when ranking candidate matches, as contextual schema-matching
   systems do. *)
let coverage schema cinds db =
  List.map
    (fun nf ->
      let r1 = Db_schema.find schema nf.Cind.nf_lhs in
      let matched =
        Relation.fold
          (fun src acc ->
            let triggers =
              List.for_all
                (fun (a, v) -> Value.equal (Tuple.get src (Schema.position r1 a)) v)
                nf.Cind.nf_xp
            in
            if triggers then acc + 1 else acc)
          (Database.relation db nf.nf_lhs)
          0
      in
      (nf.Cind.nf_name, matched))
    cinds
