open Conddep_relational
open Conddep_core

(** Contextual schema matching (Example 1.1, after Bohannon et al. [7]):
    CINDs from a source to a target schema double as executable mappings. *)

type field_default = Db_schema.t -> Attribute.t -> Tuple.t -> Value.t
(** Policy for target fields the CIND leaves unconstrained. *)

val skolem : field_default
(** Default policy: a value derived from the attribute (or the first member
    of a finite domain). *)

val migrate_tuple :
  ?default:field_default -> Db_schema.t -> Cind.nf -> Tuple.t -> Tuple.t option
(** The target tuple one CIND emits for one source tuple; [None] when the
    tuple does not match the Xp pattern (contextual gating). *)

val execute : ?default:field_default -> Db_schema.t -> Cind.nf list -> Database.t -> Database.t
(** Execute a set of CIND mappings: add every required target tuple. *)

val verify : Database.t -> Cind.nf list -> bool
(** After execution every driving CIND must hold. *)

val coverage : Db_schema.t -> Cind.nf list -> Database.t -> (string * int) list
(** Source tuples each CIND migrates — for ranking candidate matches. *)
