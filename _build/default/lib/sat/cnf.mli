(** CNF formulas with DIMACS-style integer literals.

    Variable [v >= 1] has positive literal [v] and negative literal [-v]. *)

type literal = int
type clause = literal list
type t

val make : num_vars:int -> clause list -> t
(** @raise Invalid_argument on zero literals or out-of-range variables. *)

val num_vars : t -> int
val clauses : t -> clause list
val num_clauses : t -> int

val lit_var : literal -> int
val lit_neg : literal -> literal
val lit_sign : literal -> bool

val eval_clause : bool array -> clause -> bool
(** Clause truth under a total assignment indexed by variable (index 0 unused). *)

val eval : bool array -> t -> bool

val pp : t Fmt.t
(** DIMACS rendering. *)
