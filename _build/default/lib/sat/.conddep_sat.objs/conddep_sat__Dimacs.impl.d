lib/sat/dimacs.ml: Cnf Fmt List Printf String
