lib/sat/solver.mli: Cnf
