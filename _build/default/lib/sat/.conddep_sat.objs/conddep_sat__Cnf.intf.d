lib/sat/cnf.mli: Fmt
