lib/sat/solver.ml: Array Cnf Int List Stack
