lib/sat/cnf.ml: Array Fmt List Printf
