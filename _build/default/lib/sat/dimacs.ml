(* DIMACS CNF reader/printer, for interoperability and golden tests. *)

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let num_vars = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let error fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec process = function
    | [] ->
        if !current <> [] then error "unterminated clause (missing trailing 0)"
        else if !num_vars < 0 then error "missing problem line"
        else Ok (Cnf.make ~num_vars:!num_vars (List.rev !clauses))
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = 'c' then process rest
        else if line.[0] = 'p' then begin
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | [ "p"; "cnf"; nv; _nc ] -> (
              match int_of_string_opt nv with
              | Some n when n >= 0 ->
                  num_vars := n;
                  process rest
              | _ -> error "malformed problem line: %s" line)
          | _ -> error "malformed problem line: %s" line
        end
        else
          let tokens = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
          let rec consume = function
            | [] -> Ok ()
            | tok :: toks -> (
                match int_of_string_opt tok with
                | Some 0 ->
                    clauses := List.rev !current :: !clauses;
                    current := [];
                    consume toks
                | Some l ->
                    current := l :: !current;
                    consume toks
                | None -> error "bad literal %S" tok)
          in
          match consume tokens with Ok () -> process rest | Error _ as e -> e)
  in
  try process lines with Invalid_argument msg -> Error msg

let print cnf = Fmt.str "%a@." Cnf.pp cnf
