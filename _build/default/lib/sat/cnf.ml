(* CNF formulas over positive integer variables.  A literal is a nonzero
   integer: [v] is the positive literal of variable [v], [-v] its negation —
   the DIMACS convention. *)

type literal = int
type clause = literal list
type t = { num_vars : int; clauses : clause list }

let lit_var (l : literal) = abs l
let lit_neg (l : literal) = -l
let lit_sign (l : literal) = l > 0

let make ~num_vars clauses =
  if num_vars < 0 then invalid_arg "Cnf.make: negative variable count";
  List.iter
    (List.iter (fun l ->
         if l = 0 || abs l > num_vars then
           invalid_arg (Printf.sprintf "Cnf.make: literal %d out of range" l)))
    clauses;
  { num_vars; clauses }

let num_vars t = t.num_vars
let clauses t = t.clauses
let num_clauses t = List.length t.clauses

(* Evaluate under a total assignment (array of bools indexed by variable,
   index 0 unused). *)
let eval_clause assignment clause =
  List.exists (fun l -> assignment.(lit_var l) = lit_sign l) clause

let eval assignment t = List.for_all (eval_clause assignment) t.clauses

let pp ppf t =
  Fmt.pf ppf "@[<v>p cnf %d %d@,%a@]" t.num_vars (num_clauses t)
    Fmt.(list (append (list ~sep:sp int) (any " 0")))
    t.clauses
