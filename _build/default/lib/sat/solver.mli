(** A complete DPLL SAT solver with watched-literal unit propagation.

    Substitute for SAT4j [19] in the SAT-based consistency checking of
    Section 5.2: the reduction only needs a complete propositional oracle. *)

type result =
  | Sat of bool array  (** model indexed by variable; index 0 is unused *)
  | Unsat

val solve : Cnf.t -> result

val is_sat : Cnf.t -> bool

val solve_brute : Cnf.t -> result
(** Exhaustive reference implementation for differential testing.
    @raise Invalid_argument beyond 24 variables. *)
