(** DIMACS CNF format support. *)

val parse : string -> (Cnf.t, string) result
(** Parse DIMACS text (comments and blank lines allowed). *)

val print : Cnf.t -> string
