open Conddep_relational
open Conddep_core

(** The dependency graph G\[Σ\] of Section 5.3: vertices are relations
    (carrying their CFD sets and tuple templates), edges carry the CIND
    sets between relations.  Mutated in place by preProcessing. *)

type t

val make : Db_schema.t -> Sigma.nf -> t
val schema : t -> Db_schema.t

val live : t -> string list
(** Vertices not yet deleted. *)

val is_live : t -> string -> bool

val cfd_set : t -> string -> Cfd.nf list
(** The current (possibly extended) CFD(R). *)

val add_cfds : t -> string -> Cfd.nf list -> unit
(** Extend CFD(R), e.g. with the non-triggering CFDs CIND(Rj, R)⊥. *)

val remove : t -> string -> unit

val cinds_between : t -> src:string -> dst:string -> Cind.nf list
(** The edge label CIND(src, dst), on live vertices. *)

val successors : t -> string -> string list
val predecessors : t -> string -> string list
val indegree : t -> string -> int
val edges : t -> (string * string) list

val sccs : t -> string list list
(** Tarjan's strongly connected components, emitted targets-first (reverse
    topological order of the condensation). *)

val topo_order : t -> string list
(** The processing order of Fig 7: Rj precedes Ri whenever Ri -> Rj;
    vertices of a cycle in arbitrary order. *)

val weak_components : t -> string list list
(** Weakly connected components — the units Checking analyses separately. *)

val component_sigma : t -> string list -> Sigma.nf
(** Extended CFDs of the members plus CINDs internal to the component. *)

val pp : t Fmt.t
