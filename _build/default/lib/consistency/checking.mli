open Conddep_relational
open Conddep_core
open Conddep_chase

(** Algorithm Checking (Fig 9): preProcessing + per-component
    RandomChecking.  Sound: [Consistent] carries a verified witness;
    [Inconsistent] is definitive (Fig 7's reduction emptied the graph);
    [Unknown] means no witness was found within the budgets. *)

type result =
  | Consistent of Database.t
  | Inconsistent
  | Unknown

val check :
  ?backend:Cfd_checking.backend ->
  ?config:Chase.config ->
  ?k:int ->
  ?k_cfd:int ->
  rng:Rng.t ->
  Db_schema.t ->
  Sigma.nf ->
  result

val to_bool : result -> bool
(** The paper's boolean answer: [true] only for [Consistent]. *)
