open Conddep_relational
open Conddep_core

(* Algorithm Checking (Fig 9): preProcessing first; when it has no
   definitive answer, run RandomChecking on each remaining weakly connected
   component of the reduced dependency graph.  The component's constraints
   include the non-triggering CFDs accumulated during preProcessing, so a
   component witness extends to a witness for all of Σ by leaving every
   other relation empty — which we verify before answering. *)

type result =
  | Consistent of Database.t
  | Inconsistent
  | Unknown

let check ?backend ?config ?k ?k_cfd ~rng schema (sigma : Sigma.nf) =
  match Preprocessing.run ?backend ?k_cfd ~rng schema sigma with
  | Preprocessing.Consistent db -> Consistent db
  | Preprocessing.Inconsistent -> Inconsistent
  | Preprocessing.Unknown components ->
      let rec try_components = function
        | [] -> Unknown
        | (members, component_sigma) :: rest -> (
            match
              Random_checking.check ?config ?k ?k_cfd ~seed_rels:members ~rng schema
                component_sigma
            with
            | Random_checking.Consistent db when Sigma.nf_holds db sigma ->
                Consistent db
            | Random_checking.Consistent _ | Random_checking.Unknown ->
                try_components rest)
      in
      try_components components

let to_bool = function Consistent _ -> true | Inconsistent | Unknown -> false
