lib/consistency/depgraph.ml: Cfd Cind Conddep_core Conddep_relational Db_schema Fmt Hashtbl List Option Sigma String
