lib/consistency/cfd_checking.ml: Array Attribute Cfd Chase Cnf Conddep_chase Conddep_core Conddep_relational Conddep_sat Db_schema Domain List Option Pattern Schema Solver String Template Tuple Value
