lib/consistency/random_checking.ml: Cfd_checking Chase Conddep_chase Conddep_core Conddep_relational Database Db_schema List Pool Rng Sigma Template Value
