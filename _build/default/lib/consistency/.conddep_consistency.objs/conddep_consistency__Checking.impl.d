lib/consistency/checking.ml: Conddep_core Conddep_relational Database Preprocessing Random_checking Sigma
