lib/consistency/checking.mli: Cfd_checking Chase Conddep_chase Conddep_core Conddep_relational Database Db_schema Rng Sigma
