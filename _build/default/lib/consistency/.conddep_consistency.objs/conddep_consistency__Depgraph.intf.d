lib/consistency/depgraph.mli: Cfd Cind Conddep_core Conddep_relational Db_schema Fmt Sigma
