lib/consistency/preprocessing.mli: Cfd Cfd_checking Cind Conddep_chase Conddep_core Conddep_relational Database Db_schema Rng Sigma Template
