lib/consistency/cfd_checking.mli: Cfd Chase Conddep_chase Conddep_core Conddep_relational Db_schema Rng Template Tuple Value
