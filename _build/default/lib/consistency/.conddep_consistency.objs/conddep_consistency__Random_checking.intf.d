lib/consistency/random_checking.mli: Chase Conddep_chase Conddep_core Conddep_relational Database Db_schema Rng Sigma
