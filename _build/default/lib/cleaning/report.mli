open Conddep_relational
open Conddep_core

(** Human-readable cleaning reports. *)

type t = {
  total_tuples : int;
  violations : Detect.violation list;
}

val build : Database.t -> Sigma.nf -> t
val count : t -> int

val by_constraint : t -> (string * Detect.violation list) list
(** Violations grouped per constraint name, sorted. *)

val pp : t Fmt.t
