open Conddep_relational
open Conddep_core

(** Scalable violation detection — the hash-grouped / indexed counterpart
    of {!Detect} (same violation sets, differentially tested), analogous to
    the SQL detection queries of Bohannon et al. [9].

    CFDs are detected by grouping on the X-projection (linear in the data
    plus the size of the violating groups); CINDs by a hash index on the
    pattern-restricted RHS projection (one lookup per LHS tuple). *)

val cfd_violations : Database.t -> Cfd.nf -> (Tuple.t * Tuple.t) list
(** Same set of violating pairs as {!Cfd.nf_violations}, up to order. *)

val cind_violations : Database.t -> Cind.nf -> Tuple.t list
(** Same set of violating tuples as {!Detect.cind_violations}, up to order. *)

val detect : Database.t -> Sigma.nf -> Detect.violation list
val is_clean : Database.t -> Sigma.nf -> bool
