(* Human-readable cleaning reports. *)

type t = {
  total_tuples : int;
  violations : Detect.violation list;
}

let build db sigma =
  {
    total_tuples = Conddep_relational.Database.total_tuples db;
    violations = Detect.detect db sigma;
  }

let count t = List.length t.violations

(* Violations grouped per constraint name. *)
let by_constraint t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let key = Detect.violation_constraint v in
      Hashtbl.replace tbl key (v :: Option.value ~default:[] (Hashtbl.find_opt tbl key)))
    t.violations;
  Hashtbl.fold (fun k vs acc -> (k, List.rev vs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  Fmt.pf ppf "@[<v>database: %d tuples; %d violation(s)@," t.total_tuples (count t);
  List.iter
    (fun (name, vs) ->
      Fmt.pf ppf "@[<v2>%s: %d violation(s)@,%a@]@," name (List.length vs)
        Fmt.(list ~sep:cut Detect.pp_violation)
        vs)
    (by_constraint t);
  Fmt.pf ppf "@]"
