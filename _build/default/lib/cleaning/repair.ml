open Conddep_relational
open Conddep_core

(* Repair suggestions for detected violations, in the spirit of the
   value-modification repairs of Bohannon et al. [8] (cited by the paper as
   the standard constraint-repair setting):

   - a single-tuple CFD violation (t matches tp[X] but t[A] ≠ a) is fixed
     by updating t[A] to the pattern constant;
   - a pair violation on a wildcard RHS is fixed by copying t1[A] into t2;
   - a CIND violation is fixed by inserting the missing RHS tuple (its
     unconstrained fields filled by a caller-supplied default). *)

type action =
  | Update of { rel : string; tuple : Tuple.t; attr : string; value : Value.t }
  | Insert of { rel : string; tuple : Tuple.t }
  | Delete of { rel : string; tuple : Tuple.t }

let pp_action ppf = function
  | Update { rel; tuple; attr; value } ->
      Fmt.pf ppf "@[<h>update %s %a: set %s := %a@]" rel Tuple.pp tuple attr Value.pp
        value
  | Insert { rel; tuple } -> Fmt.pf ppf "@[<h>insert %a into %s@]" Tuple.pp tuple rel
  | Delete { rel; tuple } -> Fmt.pf ppf "@[<h>delete %a from %s@]" Tuple.pp tuple rel

(* Default values for the fields a CIND repair cannot derive. *)
let default_field attr =
  match Domain.values (Attribute.domain attr) with
  | Some (v :: _) -> v
  | _ -> Value.Str "?"

let suggest schema violation =
  match violation with
  | Detect.Cfd_violation { rel; nf; t1; t2; _ } -> (
      let r = Db_schema.find schema rel in
      let apos = Schema.position r nf.Cfd.nf_a in
      match nf.nf_ta with
      | Pattern.Const a when not (Value.equal (Tuple.get t1 apos) a) ->
          [ Update { rel; tuple = t1; attr = nf.nf_a; value = a } ]
      | Pattern.Const a -> [ Update { rel; tuple = t2; attr = nf.nf_a; value = a } ]
      | Pattern.Wildcard ->
          (* equate the pair on A by copying the first tuple's value *)
          [ Update { rel; tuple = t2; attr = nf.nf_a; value = Tuple.get t1 apos } ])
  | Detect.Cind_violation { rhs; nf; tuple; _ } ->
      let r1 = Db_schema.find schema nf.Cind.nf_lhs in
      let r2 = Db_schema.find schema rhs in
      let fields =
        List.map
          (fun attr ->
            let name = Attribute.name attr in
            match List.assoc_opt name nf.nf_yp with
            | Some v -> v
            | None -> (
                (* copy through the embedded inclusion when possible *)
                match
                  List.find_opt (fun (_, b) -> String.equal b name)
                    (List.combine nf.nf_x nf.nf_y)
                with
                | Some (a, _) -> Tuple.get tuple (Schema.position r1 a)
                | None -> default_field attr))
          (Schema.attrs r2)
      in
      [ Insert { rel = rhs; tuple = Tuple.make fields } ]

let apply db action =
  match action with
  | Insert { rel; tuple } -> Database.add_tuple db rel tuple
  | Delete { rel; tuple } ->
      let r = Database.relation db rel in
      Database.set_relation db (Relation.filter (fun t -> not (Tuple.equal t tuple)) r)
  | Update { rel; tuple; attr; value } ->
      let r = Database.relation db rel in
      let pos = Schema.position (Relation.schema r) attr in
      let updated = Tuple.set tuple pos value in
      let without = Relation.filter (fun t -> not (Tuple.equal t tuple)) r in
      Database.set_relation db (Relation.add without updated)

(* One repair round: suggest and apply a fix for every current violation.
   Iterating rounds may be needed (fixes can surface new violations); the
   caller bounds the iteration. *)
let repair_round schema sigma db =
  let violations = Detect.detect db sigma in
  List.fold_left
    (fun db v -> List.fold_left apply db (suggest schema v))
    db violations

let repair ?(max_rounds = 5) schema sigma db =
  let rec go db round =
    if round >= max_rounds then db
    else if Detect.is_clean db sigma then db
    else go (repair_round schema sigma db) (round + 1)
  in
  go db 0

(* --- cost-based repair ----------------------------------------------------

   After the cost model of Bohannon et al. [8] (the repair framework the
   paper cites): every primitive action carries a cost, each violation
   offers alternative repair plans, and the cheapest plan is applied. *)

type cost_model = {
  update_cost : int; (* changing one field *)
  insert_cost : int; (* adding a missing partner tuple *)
  delete_cost : int; (* removing an offending tuple *)
}

(* [8]'s intuition: updates are preferred, deletions lose whole tuples. *)
let default_costs = { update_cost = 1; insert_cost = 3; delete_cost = 5 }

let cost model = function
  | Update _ -> model.update_cost
  | Insert _ -> model.insert_cost
  | Delete _ -> model.delete_cost

let plan_cost model plan = List.fold_left (fun acc a -> acc + cost model a) 0 plan

(* Alternative plans for one violation, each resolving it. *)
let alternatives schema violation =
  match violation with
  | Detect.Cfd_violation { rel; nf; t1; t2; _ } -> (
      let r = Db_schema.find schema rel in
      let apos = Schema.position r nf.Cfd.nf_a in
      match nf.nf_ta with
      | Pattern.Const a ->
          let fix t =
            if Value.equal (Tuple.get t apos) a then []
            else [ Update { rel; tuple = t; attr = nf.nf_a; value = a } ]
          in
          let updates = fix t1 @ if Tuple.equal t1 t2 then [] else fix t2 in
          [ updates; [ Delete { rel; tuple = t1 } ] ]
          @ if Tuple.equal t1 t2 then [] else [ [ Delete { rel; tuple = t2 } ] ]
      | Pattern.Wildcard ->
          [
            [ Update { rel; tuple = t2; attr = nf.nf_a; value = Tuple.get t1 apos } ];
            [ Update { rel; tuple = t1; attr = nf.nf_a; value = Tuple.get t2 apos } ];
            [ Delete { rel; tuple = t1 } ];
            [ Delete { rel; tuple = t2 } ];
          ])
  | Detect.Cind_violation { lhs; tuple; _ } ->
      [ suggest schema violation; [ Delete { rel = lhs; tuple } ] ]

(* One cost-minimizing round: cheapest plan per current violation. *)
let repair_round_min_cost model schema sigma db =
  let violations = Detect.detect db sigma in
  List.fold_left
    (fun (db, total) v ->
      match
        List.sort
          (fun p q -> Int.compare (plan_cost model p) (plan_cost model q))
          (List.filter (fun p -> p <> []) (alternatives schema v))
      with
      | [] -> (db, total)
      | plan :: _ -> (List.fold_left apply db plan, total + plan_cost model plan))
    (db, 0) violations

let repair_min_cost ?(max_rounds = 5) ?(costs = default_costs) schema sigma db =
  let rec go db total round =
    if round >= max_rounds || Detect.is_clean db sigma then (db, total)
    else
      let db, spent = repair_round_min_cost costs schema sigma db in
      go db (total + spent) (round + 1)
  in
  go db 0 0
