open Conddep_relational
open Conddep_core

(** Repair suggestions for detected violations, in the spirit of the
    value-modification repairs of Bohannon et al. [8]: pattern constants
    are restored on CFD violations, missing CIND partners are inserted. *)

type action =
  | Update of { rel : string; tuple : Tuple.t; attr : string; value : Value.t }
  | Insert of { rel : string; tuple : Tuple.t }
  | Delete of { rel : string; tuple : Tuple.t }

val pp_action : action Fmt.t

val suggest : Db_schema.t -> Detect.violation -> action list
(** Candidate fixes for one violation. *)

val apply : Database.t -> action -> Database.t

val repair_round : Db_schema.t -> Sigma.nf -> Database.t -> Database.t
(** Suggest-and-apply one fix per current violation. *)

val repair : ?max_rounds:int -> Db_schema.t -> Sigma.nf -> Database.t -> Database.t
(** Iterate {!repair_round} until clean or [max_rounds] (default 5) —
    fixes may surface new violations. *)

(** {1 Cost-based repair}

    After the cost model of Bohannon et al. [8]: actions carry costs,
    violations offer alternative plans, the cheapest is applied. *)

type cost_model = {
  update_cost : int;
  insert_cost : int;
  delete_cost : int;
}

val default_costs : cost_model
(** Updates preferred over insertions over deletions. *)

val cost : cost_model -> action -> int

val alternatives : Db_schema.t -> Detect.violation -> action list list
(** Alternative repair plans for one violation, each resolving it. *)

val repair_min_cost :
  ?max_rounds:int ->
  ?costs:cost_model ->
  Db_schema.t ->
  Sigma.nf ->
  Database.t ->
  Database.t * int
(** Iterated cheapest-plan repair; returns the repaired database and the
    total cost spent. *)
