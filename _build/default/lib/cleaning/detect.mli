open Conddep_relational
open Conddep_core

(** Constraint-based dirty-data detection (the data-cleaning application of
    Example 1.2): every CFD/CIND violation in a database with provenance.
    CIND violations are computed by anti-join, the relational form of the
    SQL detection queries of Bohannon et al. [9]. *)

type violation =
  | Cfd_violation of {
      constraint_name : string;
      rel : string;
      nf : Cfd.nf;
      t1 : Tuple.t;
      t2 : Tuple.t;  (** equal to [t1] for single-tuple violations *)
    }
  | Cind_violation of {
      constraint_name : string;
      lhs : string;
      rhs : string;
      nf : Cind.nf;
      tuple : Tuple.t;  (** LHS tuple lacking a witness *)
    }

val violation_constraint : violation -> string
val violation_rel : violation -> string
(** The relation holding the offending tuple(s). *)

val cind_violations : Database.t -> Cind.nf -> Tuple.t list
(** Triggering LHS tuples with no RHS partner (anti-join based). *)

val detect : Database.t -> Sigma.nf -> violation list
(** All violations of Σ in the database. *)

val is_clean : Database.t -> Sigma.nf -> bool

val pp_violation : violation Fmt.t
