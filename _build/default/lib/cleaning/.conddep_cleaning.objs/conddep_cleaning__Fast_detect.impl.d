lib/cleaning/fast_detect.ml: Cfd Cind Conddep_core Conddep_relational Database Db_schema Detect Hashtbl List Option Pattern Relation Schema Sigma Tuple Value
