lib/cleaning/detect.mli: Cfd Cind Conddep_core Conddep_relational Database Fmt Sigma Tuple
