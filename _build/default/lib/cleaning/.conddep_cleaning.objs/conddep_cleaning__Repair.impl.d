lib/cleaning/repair.ml: Attribute Cfd Cind Conddep_core Conddep_relational Database Db_schema Detect Domain Fmt Int List Pattern Relation Schema String Tuple Value
