lib/cleaning/repair.mli: Conddep_core Conddep_relational Database Db_schema Detect Fmt Sigma Tuple Value
