lib/cleaning/fast_detect.mli: Cfd Cind Conddep_core Conddep_relational Database Detect Sigma Tuple
