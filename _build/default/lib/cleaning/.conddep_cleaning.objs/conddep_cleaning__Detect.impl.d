lib/cleaning/detect.ml: Algebra Cfd Cind Conddep_core Conddep_relational Database Db_schema Fmt List Pattern Relation Schema Sigma Tuple
