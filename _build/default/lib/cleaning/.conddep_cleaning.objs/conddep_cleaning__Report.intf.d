lib/cleaning/report.mli: Conddep_core Conddep_relational Database Detect Fmt Sigma
