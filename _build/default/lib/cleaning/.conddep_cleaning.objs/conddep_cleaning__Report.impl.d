lib/cleaning/report.ml: Conddep_relational Detect Fmt Hashtbl List Option String
