(** A named attribute with its domain. *)

type t = { name : string; domain : Domain.t }

val make : string -> Domain.t -> t
(** @raise Invalid_argument on an empty name. *)

val name : t -> string
val domain : t -> Domain.t

val is_finite : t -> bool
(** Whether the attribute belongs to [finattr(R)]. *)

val equal : t -> t -> bool
val pp : t Fmt.t
