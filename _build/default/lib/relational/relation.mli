(** Relation instances: duplicate-free sets of well-typed tuples. *)

type t

val empty : Schema.t -> t
val schema : t -> Schema.t

val add : t -> Tuple.t -> t
(** @raise Invalid_argument when the tuple is ill-typed for the schema. *)

val of_list : Schema.t -> Tuple.t list -> t
val tuples : t -> Tuple.t list
val cardinal : t -> int
val is_empty : t -> bool
val mem : t -> Tuple.t -> bool
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val exists : (Tuple.t -> bool) -> t -> bool
val for_all : (Tuple.t -> bool) -> t -> bool
val filter : (Tuple.t -> bool) -> t -> t

val union : t -> t -> t
(** @raise Invalid_argument on schema mismatch. *)

val pp : t Fmt.t
