(** Atomic data values.

    Values populate tuples and appear as the constants of pattern tableaux
    in conditional dependencies.  Three base types suffice for everything in
    the paper: integers, strings and booleans. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool

val compare : t -> t -> int
(** Total order: all [Int] < all [Str] < all [Bool], each ordered natively. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : t Fmt.t
(** Prints strings quoted, e.g. ["EDI"], integers and booleans bare. *)

val to_string : t -> string

val of_string : string -> t
(** Inverse of {!to_string} on its image; unquoted non-numeric text parses
    as a bare [Str]. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
