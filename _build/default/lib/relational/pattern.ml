(* Pattern cells and the match order ≍ of Section 2: a data value matches
   itself and the unnamed variable '_'. *)

type cell =
  | Const of Value.t
  | Wildcard

let cell_equal a b =
  match a, b with
  | Const x, Const y -> Value.equal x y
  | Wildcard, Wildcard -> true
  | Const _, Wildcard | Wildcard, Const _ -> false

let match_cell v = function Const c -> Value.equal v c | Wildcard -> true

let matches values cells =
  List.length values = List.length cells && List.for_all2 match_cell values cells

(* ≍ lifted to pattern tuples: cells1 ≍ cells2 when every constant of
   [cells2] is matched exactly and wildcards of [cells2] match anything.
   Used when comparing pattern tuples to pattern tuples (e.g. rule checks). *)
let cells_refine cells1 cells2 =
  List.length cells1 = List.length cells2
  && List.for_all2
       (fun c1 c2 ->
         match c2 with Wildcard -> true | Const _ -> cell_equal c1 c2)
       cells1 cells2

let is_const = function Const _ -> true | Wildcard -> false
let const_value = function Const v -> Some v | Wildcard -> None

let constants cells =
  List.filter_map const_value cells

let pp_cell ppf = function
  | Const v -> Value.pp ppf v
  | Wildcard -> Fmt.string ppf "_"

let pp_cells ppf cells = Fmt.pf ppf "%a" Fmt.(list ~sep:comma pp_cell) cells
