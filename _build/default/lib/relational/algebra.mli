(** A small relational-algebra evaluator over {!Relation} instances.

    Violation detection for conditional dependencies can be phrased as
    select/project/anti-join queries; the cleaning layer does exactly that,
    mirroring the SQL-based detection technique of Bohannon et al. [9]. *)

val select : (Tuple.t -> bool) -> Relation.t -> Relation.t

val select_pattern :
  Schema.t -> string list -> Pattern.cell list -> Relation.t -> Relation.t
(** Tuples whose projection on the named attributes matches the pattern. *)

val project : Relation.t -> string list -> Relation.t
(** Duplicate-eliminating projection; the result schema is renamed. *)

val rename : Relation.t -> string -> Relation.t

val join : Relation.t -> Relation.t -> Relation.t
(** Natural join on attributes the two schemas share by name. *)

val union : Relation.t -> Relation.t -> Relation.t

val difference : Relation.t -> Relation.t -> Relation.t
(** @raise Invalid_argument on schema mismatch. *)

val semi_join :
  Relation.t -> lpos:int list -> Relation.t -> rpos:int list -> Relation.t
(** Tuples of the left relation having a partner in the right relation that
    agrees on the given position correspondence. *)

val anti_join :
  Relation.t -> lpos:int list -> Relation.t -> rpos:int list -> Relation.t
(** Tuples of the left relation with no partner — the core of inclusion
    violation detection. *)
