type t = { name : string; domain : Domain.t }

let make name domain =
  if name = "" then invalid_arg "Attribute.make: empty name";
  { name; domain }

let name t = t.name
let domain t = t.domain
let is_finite t = Domain.is_finite t.domain
let equal a b = String.equal a.name b.name && Domain.equal a.domain b.domain
let pp ppf t = Fmt.pf ppf "%s : %a" t.name Domain.pp t.domain
