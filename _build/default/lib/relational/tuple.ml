(* Tuples are value arrays aligned with the attribute positions of a
   relation schema. *)

type t = Value.t array

let make values = Array.of_list values
let of_array a = Array.copy a
let to_list = Array.to_list
let arity = Array.length
let get (t : t) i = t.(i)

let proj (t : t) positions = List.map (fun i -> t.(i)) positions

let proj_names schema t names = proj t (List.map (Schema.position schema) names)

let compare (a : t) (b : t) =
  let n = Array.length a and m = Array.length b in
  if n <> m then Int.compare n m
  else
    let rec go i =
      if i >= n then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let well_typed schema (t : t) =
  Array.length t = Schema.arity schema
  && Array.for_all
       (fun ok -> ok)
       (Array.mapi (fun i v -> Domain.mem (Attribute.domain (Schema.attr schema i)) v) t)

let set (t : t) i v =
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

let pp ppf (t : t) = Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma Value.pp) (to_list t)
