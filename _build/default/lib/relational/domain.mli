(** Attribute domains, finite or infinite.

    Whether an attribute has a finite domain ([finattr] in the paper) drives
    both the complexity of CIND implication (PSPACE vs EXPTIME) and the
    behaviour of the heuristic chase, so the distinction is carried in the
    type. *)

type base =
  | Dint
  | Dstring
  | Dbool

type t =
  | Infinite of base
  | Finite of Value.t list  (** invariant: sorted, duplicate-free, nonempty *)

val int_inf : t
(** The infinite domain of integers. *)

val string_inf : t
(** The infinite domain of strings. *)

val bool_dom : t
(** The two-element boolean domain, finite. *)

val finite : Value.t list -> t
(** [finite vs] builds a finite domain from [vs] (sorted, deduplicated).
    @raise Invalid_argument on an empty list. *)

val is_finite : t -> bool

val values : t -> Value.t list option
(** [Some vs] for a finite domain, [None] otherwise. *)

val cardinal : t -> int option

val mem : t -> Value.t -> bool
(** Domain membership; for infinite domains this is a base-type check. *)

val subset : t -> t -> bool
(** [subset d1 d2] holds when every value of [d1] belongs to [d2].  CIND
    validation uses it to enforce the paper's assumption dom(Ai) ⊆ dom(Bi). *)

val fresh : t -> avoid:Value.t list -> Value.t option
(** A domain value distinct from everything in [avoid]; [None] only when a
    finite domain is exhausted. *)

val equal : t -> t -> bool
val pp : t Fmt.t
val pp_base : base Fmt.t
