(** Minimal CSV import/export for relation instances.

    Field values are coerced according to the schema's attribute domains;
    lines starting with ['#'] and blank lines are skipped.  Double-quoted
    fields support doubled-quote escapes. *)

val parse_string : Schema.t -> string -> (Relation.t, string) result
val load : Schema.t -> string -> (Relation.t, string) result
val to_string : Relation.t -> string
val save : Relation.t -> string -> unit
