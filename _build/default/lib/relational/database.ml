(* Database instances: one relation instance per relation schema. *)

module String_map = Map.Make (String)

type t = { schema : Db_schema.t; rels : Relation.t String_map.t }

let empty schema =
  let rels =
    List.fold_left
      (fun acc r -> String_map.add (Schema.name r) (Relation.empty r) acc)
      String_map.empty (Db_schema.relations schema)
  in
  { schema; rels }

let schema t = t.schema

let relation t name =
  match String_map.find_opt name t.rels with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Database.relation: no relation %S" name)

let set_relation t rel =
  let name = Schema.name (Relation.schema rel) in
  if not (Db_schema.mem t.schema name) then
    invalid_arg (Printf.sprintf "Database.set_relation: %S not in schema" name);
  { t with rels = String_map.add name rel t.rels }

let add_tuple t name tuple = set_relation t (Relation.add (relation t name) tuple)

let of_alist schema alist =
  List.fold_left
    (fun db (name, tuples) ->
      List.fold_left (fun db tuple -> add_tuple db name tuple) db tuples)
    (empty schema) alist

let fold f t acc = String_map.fold (fun _ rel acc -> f rel acc) t.rels acc
let iter f t = String_map.iter (fun _ rel -> f rel) t.rels
let total_tuples t = fold (fun rel acc -> acc + Relation.cardinal rel) t 0
let is_empty t = total_tuples t = 0

let pp ppf t =
  let non_empty = fold (fun rel acc -> if Relation.is_empty rel then acc else rel :: acc) t [] in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list Relation.pp) (List.rev non_empty)
