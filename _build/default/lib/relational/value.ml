(* Atomic data values stored in relations and appearing as constants in
   pattern tableaux.  The paper's examples mix strings ("EDI", "4.5%"),
   integers and booleans, so we support exactly those three bases. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool

let compare (a : t) (b : t) =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Int _, (Str _ | Bool _) -> -1
  | Str _, Int _ -> 1
  | Str x, Str y -> String.compare x y
  | Str _, Bool _ -> -1
  | Bool _, (Int _ | Str _) -> 1
  | Bool x, Bool y -> Bool.compare x y

let equal a b = compare a b = 0

let hash = Hashtbl.hash

let pp ppf = function
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b

let to_string v = Fmt.str "%a" pp v

(* Parse a literal the way the DSL prints it: quoted strings, integers,
   [true]/[false].  Unquoted text falls back to [Str]. *)
let of_string s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then Str (String.sub s 1 (n - 2))
  else if s = "true" then Bool true
  else if s = "false" then Bool false
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> Str s

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
