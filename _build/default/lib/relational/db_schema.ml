(* A database schema R = (R1, ..., Rn). *)

type t = { relations : Schema.t list }

let make relations =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let n = Schema.name r in
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Db_schema.make: duplicate relation %S" n);
      Hashtbl.add seen n ())
    relations;
  { relations }

let relations t = t.relations
let rel_names t = List.map Schema.name t.relations

let find_opt t name =
  List.find_opt (fun r -> String.equal (Schema.name r) name) t.relations

let find t name =
  match find_opt t name with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Db_schema.find: no relation %S" name)

let mem t name = Option.is_some (find_opt t name)

let has_finite_attrs t =
  List.exists (fun r -> Schema.finite_attrs r <> []) t.relations

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" Fmt.(list Schema.pp) t.relations
