(** Relation schemas: a relation name with an ordered attribute list. *)

type t

val make : string -> Attribute.t list -> t
(** @raise Invalid_argument on an empty name or duplicate attribute names. *)

val name : t -> string
val arity : t -> int
val attrs : t -> Attribute.t list
val attr_names : t -> string list

val attr : t -> int -> Attribute.t
(** Attribute at a position. @raise Invalid_argument when out of range. *)

val position : t -> string -> int
(** Position of a named attribute. @raise Invalid_argument when absent. *)

val position_opt : t -> string -> int option
val mem_attr : t -> string -> bool

val domain_of : t -> string -> Domain.t
(** @raise Invalid_argument when the attribute is absent. *)

val finite_attrs : t -> Attribute.t list
(** The attributes of [finattr(R)], in schema order. *)

val equal : t -> t -> bool
val pp : t Fmt.t
