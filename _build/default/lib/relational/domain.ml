(* Attribute domains.  The paper's static analyses hinge on whether an
   attribute's domain is finite (finattr) or infinite, so the distinction is
   first-class here. *)

type base =
  | Dint
  | Dstring
  | Dbool

type t =
  | Infinite of base
  | Finite of Value.t list (* sorted, duplicate-free, nonempty *)

let int_inf = Infinite Dint
let string_inf = Infinite Dstring

let finite values =
  match List.sort_uniq Value.compare values with
  | [] -> invalid_arg "Domain.finite: empty domain"
  | vs -> Finite vs

let bool_dom = finite [ Value.Bool false; Value.Bool true ]

let is_finite = function Infinite _ -> false | Finite _ -> true

let values = function Infinite _ -> None | Finite vs -> Some vs

let cardinal = function Infinite _ -> None | Finite vs -> Some (List.length vs)

let base_mem base (v : Value.t) =
  match base, v with
  | Dint, Value.Int _ -> true
  | Dstring, Value.Str _ -> true
  | Dbool, Value.Bool _ -> true
  | (Dint | Dstring | Dbool), _ -> false

let mem t v =
  match t with
  | Infinite base -> base_mem base v
  | Finite vs -> List.exists (Value.equal v) vs

(* [subset d1 d2] over-approximates dom(d1) ⊆ dom(d2); it is exact for the
   domain shapes we construct.  The paper assumes dom(Ai) ⊆ dom(Bi) for the
   corresponding attributes of a CIND, and validation enforces it. *)
let subset d1 d2 =
  match d1, d2 with
  | Infinite b1, Infinite b2 -> b1 = b2
  | Infinite _, Finite _ -> false
  | Finite vs, _ -> List.for_all (mem d2) vs

let fresh t ~avoid =
  match t with
  | Finite vs -> List.find_opt (fun v -> not (List.exists (Value.equal v) avoid)) vs
  | Infinite Dbool -> (
      match
        List.find_opt
          (fun v -> not (List.exists (Value.equal v) avoid))
          [ Value.Bool false; Value.Bool true ]
      with
      | Some _ as r -> r
      | None -> None)
  | Infinite Dint ->
      let max_avoided =
        List.fold_left
          (fun acc v -> match v with Value.Int i when i > acc -> i | _ -> acc)
          (-1) avoid
      in
      Some (Value.Int (max_avoided + 1))
  | Infinite Dstring ->
      let rec go i =
        let candidate = Value.Str (Printf.sprintf "#fresh%d" i) in
        if List.exists (Value.equal candidate) avoid then go (i + 1) else Some candidate
      in
      go 0

let pp_base ppf = function
  | Dint -> Fmt.string ppf "int"
  | Dstring -> Fmt.string ppf "string"
  | Dbool -> Fmt.string ppf "bool"

let pp ppf = function
  | Infinite b -> pp_base ppf b
  | Finite vs -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma Value.pp) vs

let equal d1 d2 =
  match d1, d2 with
  | Infinite b1, Infinite b2 -> b1 = b2
  | Finite v1, Finite v2 -> List.equal Value.equal v1 v2
  | Infinite _, Finite _ | Finite _, Infinite _ -> false
