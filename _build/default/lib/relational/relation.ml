(* Relation instances: finite sets of well-typed tuples over a schema. *)

module Tuple_set = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type t = { schema : Schema.t; tuples : Tuple_set.t }

let empty schema = { schema; tuples = Tuple_set.empty }
let schema t = t.schema

let add t tuple =
  if not (Tuple.well_typed t.schema tuple) then
    invalid_arg
      (Fmt.str "Relation.add: tuple %a ill-typed for %s" Tuple.pp tuple
         (Schema.name t.schema));
  { t with tuples = Tuple_set.add tuple t.tuples }

let of_list schema tuples = List.fold_left add (empty schema) tuples
let tuples t = Tuple_set.elements t.tuples
let cardinal t = Tuple_set.cardinal t.tuples
let is_empty t = Tuple_set.is_empty t.tuples
let mem t tuple = Tuple_set.mem tuple t.tuples
let fold f t acc = Tuple_set.fold f t.tuples acc
let iter f t = Tuple_set.iter f t.tuples
let exists p t = Tuple_set.exists p t.tuples
let for_all p t = Tuple_set.for_all p t.tuples
let filter p t = { t with tuples = Tuple_set.filter p t.tuples }

let union a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Relation.union: schema mismatch";
  { a with tuples = Tuple_set.union a.tuples b.tuples }

let pp ppf t =
  Fmt.pf ppf "@[<v2>%s = {@ %a@]@ }" (Schema.name t.schema)
    Fmt.(list ~sep:(any ";@ ") Tuple.pp)
    (tuples t)
