(* A relation schema: a relation name plus an ordered list of attributes.
   Attribute positions are the canonical way the rest of the library
   addresses fields of a tuple. *)

type t = { name : string; attrs : Attribute.t array }

let make name attrs =
  if name = "" then invalid_arg "Schema.make: empty relation name";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let n = Attribute.name a in
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %S in %s" n name);
      Hashtbl.add seen n ())
    attrs;
  { name; attrs = Array.of_list attrs }

let name t = t.name
let arity t = Array.length t.attrs
let attrs t = Array.to_list t.attrs

let attr t i =
  if i < 0 || i >= Array.length t.attrs then
    invalid_arg (Printf.sprintf "Schema.attr: index %d out of range for %s" i t.name);
  t.attrs.(i)

let position_opt t attr_name =
  let rec go i =
    if i >= Array.length t.attrs then None
    else if String.equal (Attribute.name t.attrs.(i)) attr_name then Some i
    else go (i + 1)
  in
  go 0

let position t attr_name =
  match position_opt t attr_name with
  | Some i -> i
  | None ->
      invalid_arg (Printf.sprintf "Schema.position: no attribute %S in %s" attr_name t.name)

let mem_attr t attr_name = Option.is_some (position_opt t attr_name)
let domain_of t attr_name = Attribute.domain (attr t (position t attr_name))
let attr_names t = Array.to_list (Array.map Attribute.name t.attrs)

let finite_attrs t =
  List.filter Attribute.is_finite (attrs t)

let equal a b =
  String.equal a.name b.name
  && Array.length a.attrs = Array.length b.attrs
  && Array.for_all2 Attribute.equal a.attrs b.attrs

let pp ppf t =
  Fmt.pf ppf "@[<h>%s(%a)@]" t.name Fmt.(list ~sep:comma Attribute.pp) (attrs t)
