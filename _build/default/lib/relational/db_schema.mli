(** Database schemas: a collection of relation schemas with distinct names. *)

type t

val make : Schema.t list -> t
(** @raise Invalid_argument on duplicate relation names. *)

val relations : t -> Schema.t list
val rel_names : t -> string list

val find : t -> string -> Schema.t
(** @raise Invalid_argument when the relation is absent. *)

val find_opt : t -> string -> Schema.t option
val mem : t -> string -> bool

val has_finite_attrs : t -> bool
(** Whether any relation has a finite-domain attribute — the setting that
    separates Tables 1 and 2 of the paper. *)

val pp : t Fmt.t
