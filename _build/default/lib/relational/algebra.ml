(* A small relational-algebra evaluator.  The data-cleaning layer uses it to
   express violation detection as queries, in the spirit of the SQL-based
   detection of [9] that the paper's conclusion refers to. *)

let select pred rel = Relation.filter pred rel

let select_pattern schema names cells rel =
  let positions = List.map (Schema.position schema) names in
  Relation.filter (fun t -> Pattern.matches (Tuple.proj t positions) cells) rel

let project rel names =
  let schema = Relation.schema rel in
  let positions = List.map (Schema.position schema) names in
  let attrs = List.map (Schema.attr schema) positions in
  let out_schema = Schema.make (Schema.name schema ^ "#proj") attrs in
  Relation.fold
    (fun t acc -> Relation.add acc (Tuple.make (Tuple.proj t positions)))
    rel (Relation.empty out_schema)

let rename rel new_name =
  let schema = Relation.schema rel in
  let out_schema = Schema.make new_name (Schema.attrs schema) in
  Relation.fold (fun t acc -> Relation.add acc t) rel (Relation.empty out_schema)

(* Natural join on the attributes the two schemas share by name. *)
let join left right =
  let ls = Relation.schema left and rs = Relation.schema right in
  let shared =
    List.filter (fun a -> Schema.mem_attr rs (Attribute.name a)) (Schema.attrs ls)
  in
  let shared_names = List.map Attribute.name shared in
  let lpos = List.map (Schema.position ls) shared_names in
  let rpos = List.map (Schema.position rs) shared_names in
  let right_only =
    List.filter (fun a -> not (List.mem (Attribute.name a) shared_names)) (Schema.attrs rs)
  in
  let right_only_pos =
    List.map (fun a -> Schema.position rs (Attribute.name a)) right_only
  in
  let out_schema =
    Schema.make
      (Schema.name ls ^ "#join#" ^ Schema.name rs)
      (Schema.attrs ls @ right_only)
  in
  Relation.fold
    (fun tl acc ->
      Relation.fold
        (fun tr acc ->
          if List.equal Value.equal (Tuple.proj tl lpos) (Tuple.proj tr rpos) then
            Relation.add acc
              (Tuple.make (Tuple.to_list tl @ Tuple.proj tr right_only_pos))
          else acc)
        right acc)
    left (Relation.empty out_schema)

let union = Relation.union

let difference a b =
  if not (Schema.equal (Relation.schema a) (Relation.schema b)) then
    invalid_arg "Algebra.difference: schema mismatch";
  Relation.filter (fun t -> not (Relation.mem b t)) a

(* Semi-join: tuples of [left] with at least one join partner in [right]
   under an explicit position correspondence. *)
let semi_join left ~lpos right ~rpos =
  Relation.filter
    (fun tl ->
      Relation.exists
        (fun tr -> List.equal Value.equal (Tuple.proj tl lpos) (Tuple.proj tr rpos))
        right)
    left

let anti_join left ~lpos right ~rpos =
  Relation.filter
    (fun tl ->
      not
        (Relation.exists
           (fun tr -> List.equal Value.equal (Tuple.proj tl lpos) (Tuple.proj tr rpos))
           right))
    left
