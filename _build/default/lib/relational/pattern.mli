(** Pattern cells and the match order [≍] of the paper (Section 2).

    A cell of a pattern tableau is either a constant or the unnamed
    variable '_'; a data value [v] matches a cell [c] ([v ≍ c]) when [c] is
    '_' or the same constant. *)

type cell =
  | Const of Value.t
  | Wildcard

val cell_equal : cell -> cell -> bool

val match_cell : Value.t -> cell -> bool
(** [match_cell v c] is [v ≍ c]. *)

val matches : Value.t list -> cell list -> bool
(** Pointwise [≍]; false on length mismatch. *)

val cells_refine : cell list -> cell list -> bool
(** [cells_refine p q] when pattern [p] is at least as specific as [q]
    pointwise (every constant of [q] appears identically in [p]). *)

val is_const : cell -> bool
val const_value : cell -> Value.t option

val constants : cell list -> Value.t list
(** The constants occurring in a cell list, in order. *)

val pp_cell : cell Fmt.t
val pp_cells : cell list Fmt.t
