lib/relational/relation.ml: Fmt List Schema Set Tuple
