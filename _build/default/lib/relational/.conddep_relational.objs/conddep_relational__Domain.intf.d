lib/relational/domain.mli: Fmt Value
