lib/relational/domain.ml: Fmt List Printf Value
