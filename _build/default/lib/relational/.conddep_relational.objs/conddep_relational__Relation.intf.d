lib/relational/relation.mli: Fmt Schema Tuple
