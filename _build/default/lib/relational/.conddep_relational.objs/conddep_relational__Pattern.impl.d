lib/relational/pattern.ml: Fmt List Value
