lib/relational/value.mli: Fmt Map Set
