lib/relational/schema.mli: Attribute Domain Fmt
