lib/relational/tuple.mli: Fmt Schema Value
