lib/relational/csv.ml: Attribute Buffer Domain Fmt List Printf Relation Schema String Tuple Value
