lib/relational/db_schema.mli: Fmt Schema
