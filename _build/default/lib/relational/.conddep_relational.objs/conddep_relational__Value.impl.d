lib/relational/value.ml: Bool Fmt Hashtbl Int Map Set String
