lib/relational/algebra.ml: Attribute List Pattern Relation Schema Tuple Value
