lib/relational/tuple.ml: Array Attribute Domain Fmt Int List Schema Value
