lib/relational/db_schema.ml: Fmt Hashtbl List Option Printf Schema String
