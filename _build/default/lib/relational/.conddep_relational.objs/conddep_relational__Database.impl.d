lib/relational/database.ml: Db_schema Fmt List Map Printf Relation Schema String
