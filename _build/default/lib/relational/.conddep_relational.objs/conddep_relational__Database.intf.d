lib/relational/database.mli: Db_schema Fmt Relation Tuple
