lib/relational/attribute.ml: Domain Fmt String
