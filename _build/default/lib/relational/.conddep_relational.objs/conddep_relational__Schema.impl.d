lib/relational/schema.ml: Array Attribute Fmt Hashtbl List Option Printf String
