lib/relational/pattern.mli: Fmt Value
