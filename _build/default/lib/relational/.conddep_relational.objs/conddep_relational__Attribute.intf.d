lib/relational/attribute.mli: Domain Fmt
