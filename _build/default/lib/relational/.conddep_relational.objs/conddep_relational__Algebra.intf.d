lib/relational/algebra.mli: Pattern Relation Schema Tuple
