(** Database instances over a database schema.

    Every relation of the schema is always present (possibly empty); the
    paper's notion of a "nonempty instance" is [not (is_empty db)]. *)

type t

val empty : Db_schema.t -> t

val schema : t -> Db_schema.t

val relation : t -> string -> Relation.t
(** @raise Invalid_argument when the relation is absent from the schema. *)

val set_relation : t -> Relation.t -> t
(** Replace a whole relation instance.
    @raise Invalid_argument when its schema is not part of the database. *)

val add_tuple : t -> string -> Tuple.t -> t
(** @raise Invalid_argument on unknown relation or ill-typed tuple. *)

val of_alist : Db_schema.t -> (string * Tuple.t list) list -> t

val fold : (Relation.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Relation.t -> unit) -> t -> unit

val total_tuples : t -> int

val is_empty : t -> bool
(** True when every relation is empty. *)

val pp : t Fmt.t
(** Prints the non-empty relations. *)
