(* Data cleaning at scale on a synthetic dirty dataset: generate a schema
   and a consistent constraint set, corrupt a database, detect violations,
   apply suggested repairs, and re-verify.

     dune exec examples/data_cleaning.exe *)

open Conddep_relational
open Conddep_core
open Conddep_generator
open Conddep_cleaning

let () =
  let rng = Rng.make 2024 in
  let schema_config =
    {
      Schema_gen.num_relations = 5;
      min_arity = 3;
      max_arity = 6;
      finite_ratio = 0.2;
      finite_dom_min = 2;
      finite_dom_max = 6;
    }
  in
  let schema = Schema_gen.generate rng schema_config in
  Fmt.pr "=== Generated schema ===@.%a@.@." Db_schema.pp schema;

  let sigma =
    Workload.consistent rng { Workload.default with num_constraints = 30 } schema
  in
  Fmt.pr "=== Generated constraints: %d CFDs, %d CINDs ===@."
    (List.length sigma.Sigma.ncfds)
    (List.length sigma.Sigma.ncinds);

  (* A clean database exists by construction. *)
  let clean = Workload.witness_db schema in
  Fmt.pr "clean witness database satisfies sigma: %b@.@." (Sigma.nf_holds clean sigma);

  (* Corrupt a larger database. *)
  let dirty = Workload.dirty_database rng schema ~tuples_per_rel:20 ~error_rate:0.15 in
  let report = Report.build dirty sigma in
  Fmt.pr "=== Dirty database: %d tuples ===@." (Database.total_tuples dirty);
  Fmt.pr "violations detected: %d@." (Report.count report);
  List.iter
    (fun (name, vs) -> Fmt.pr "  %-10s %d violation(s)@." name (List.length vs))
    (Report.by_constraint report);

  (* Repair and re-verify. *)
  let repaired = Repair.repair ~max_rounds:10 schema sigma dirty in
  let after = Report.build repaired sigma in
  Fmt.pr "@.=== After repair ===@.";
  Fmt.pr "violations remaining: %d (database now %d tuples)@." (Report.count after)
    (Database.total_tuples repaired);
  Fmt.pr "clean: %b@." (Detect.is_clean repaired sigma);

  (* Show a few concrete repair suggestions on the original dirty data. *)
  Fmt.pr "@.=== Sample repair suggestions ===@.";
  let violations = Detect.detect dirty sigma in
  List.iteri
    (fun i v ->
      if i < 5 then
        List.iter
          (fun action -> Fmt.pr "  %a@." Repair.pp_action action)
          (Repair.suggest schema v))
    violations
