examples/implication_demo.mli:
