examples/schema_matching.mli:
