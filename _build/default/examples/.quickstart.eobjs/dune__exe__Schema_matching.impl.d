examples/schema_matching.ml: Cind Conddep_consistency Conddep_core Conddep_dsl Conddep_matching Conddep_relational Database Db_schema Filename Fmt List Parser Relation Rng Sigma String Sys
