examples/bank_integration.ml: Cind Conddep_cleaning Conddep_core Conddep_fixtures Conddep_matching Conddep_relational Database Db_schema Fd Fmt Ind List Relation Sigma
