examples/data_cleaning.ml: Conddep_cleaning Conddep_core Conddep_generator Conddep_relational Database Db_schema Detect Fmt List Repair Report Rng Schema_gen Sigma Workload
