examples/quickstart.ml: Attribute Cfd Cind Conddep_consistency Conddep_core Conddep_relational Database Db_schema Domain Fmt Implication List Pattern Rng Schema Sigma Tuple Value
