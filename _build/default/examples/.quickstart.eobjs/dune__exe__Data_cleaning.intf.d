examples/data_cleaning.mli:
