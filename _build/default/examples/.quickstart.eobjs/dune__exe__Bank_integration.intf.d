examples/bank_integration.mli:
