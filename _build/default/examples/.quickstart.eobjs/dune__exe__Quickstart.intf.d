examples/quickstart.mli:
