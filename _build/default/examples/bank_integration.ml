(* The paper's running example end to end (Examples 1.1, 1.2, 2.2, 4.1):
   contextual schema matching from per-branch account relations into the
   integrated saving/checking/interest database, and detection of the
   errors traditional FDs/INDs miss.

     dune exec examples/bank_integration.exe *)

open Conddep_relational
open Conddep_core
module B = Conddep_fixtures.Bank

let () =
  Fmt.pr "=== Schemas (Example 1.1) ===@.%a@.@." Db_schema.pp B.schema;

  Fmt.pr "=== The CINDs of Fig 2 and CFDs of Fig 4 ===@.%a@.@." Sigma.pp B.sigma;

  (* --- contextual schema matching: migrate source accounts --------------- *)
  let migration =
    List.concat_map Cind.normalize [ B.psi1_nyc; B.psi1_edi; B.psi2_nyc; B.psi2_edi ]
  in
  let source =
    Database.of_alist B.schema
      [ ("account_nyc", [ B.t1; B.t2; B.t3 ]); ("account_edi", [ B.t4; B.t5 ]) ]
  in
  let migrated = Conddep_matching.Mapping.execute B.schema migration source in
  Fmt.pr "=== Migration driven by psi1/psi2 (contextual matching) ===@.";
  Fmt.pr "%a@.%a@.@."
    Relation.pp (Database.relation migrated "saving")
    Relation.pp (Database.relation migrated "checking");
  Fmt.pr "all migration CINDs hold afterwards: %b@.@."
    (Conddep_matching.Mapping.verify migrated migration);

  (* --- data cleaning: the Fig 1 instance ---------------------------------- *)
  Fmt.pr "=== Fig 1 database: traditional dependencies are satisfied ===@.";
  let fds =
    [
      Fd.make ~rel:"saving" ~x:[ "an"; "ab" ] ~y:[ "cn"; "ca"; "cp" ];
      Fd.make ~rel:"checking" ~x:[ "an"; "ab" ] ~y:[ "cn"; "ca"; "cp" ];
      Fd.make ~rel:"interest" ~x:[ "ct"; "at" ] ~y:[ "rt" ];
    ]
  in
  let inds =
    [
      Ind.make ~lhs:"saving" ~x:[ "ab" ] ~rhs:"interest" ~y:[ "ab" ];
      Ind.make ~lhs:"checking" ~x:[ "ab" ] ~rhs:"interest" ~y:[ "ab" ];
    ]
  in
  List.iter (fun fd -> Fmt.pr "  %a holds: %b@." Fd.pp fd (Fd.holds B.dirty_db fd)) fds;
  List.iter (fun ind -> Fmt.pr "  %a holds: %b@." Ind.pp ind (Ind.holds B.dirty_db ind)) inds;

  Fmt.pr "@.=== ... but the conditional dependencies catch the errors ===@.";
  let nf = Sigma.normalize B.sigma in
  let report = Conddep_cleaning.Report.build B.dirty_db nf in
  Fmt.pr "%a@." Conddep_cleaning.Report.pp report;

  (* --- repair -------------------------------------------------------------- *)
  let repaired = Conddep_cleaning.Repair.repair ~max_rounds:8 B.schema nf B.dirty_db in
  Fmt.pr "=== After repair ===@.";
  Fmt.pr "violations left: %d@."
    (List.length (Conddep_cleaning.Detect.detect repaired nf));
  Fmt.pr "interest after repair:@.%a@." Relation.pp (Database.relation repaired "interest")
