(* cindtool — command-line front end over the conditional-dependency
   library.  Operates on `.cind` files (see data/bank.cind for the format):

     cindtool parse data/bank.cind
     cindtool normalize data/bank.cind
     cindtool check-consistency data/bank.cind
     cindtool violations data/bank.cind [--repair] [--csv REL=FILE]
     cindtool implies data/bank.cind psi3
     cindtool witness data/bank.cind
     cindtool gen --relations 20 --constraints 240

   Global flags (accepted anywhere on the command line):

     cindtool --metrics out.jsonl check-consistency data/bank.cind
     cindtool --trace violations data/bank.cind
     cindtool --timeout 5 check-consistency data/bank.cind
     cindtool --fuel 100000 implies data/bank.cind psi3
     cindtool stats out.jsonl

   Exit codes are uniform across subcommands:
     0 — decided / ok (consistent, clean, implied, proof found)
     1 — negative finding (inconsistent, violations found, not implied)
     2 — usage or parse error, or internal error
     3 — undetermined: heuristic gave up, or a resource budget
         (--timeout / --fuel) was exhausted; the reason is on stderr *)

open Cmdliner
open Conddep_relational
open Conddep_core
open Conddep_dsl

(* --- uniform exit codes ---------------------------------------------------- *)

let exit_ok = 0
let exit_negative = 1
let exit_usage = 2
let exit_undetermined = 3

let exits =
  [
    Cmd.Exit.info exit_ok ~doc:"decided / ok: consistent, clean, implied, proof found.";
    Cmd.Exit.info exit_negative
      ~doc:"negative finding: inconsistent, violations found, not implied.";
    Cmd.Exit.info exit_usage ~doc:"usage, parse, or internal error.";
    Cmd.Exit.info exit_undetermined
      ~doc:
        "undetermined: the heuristic gave up within its budgets, or a \
         resource budget ($(b,--timeout), $(b,--fuel)) was exhausted — the \
         exhaustion reason is printed on stderr.";
  ]

(* Flat self-time attribution, biggest first, with per-span latency
   quantiles estimated from the span histograms. *)
let pp_profile_table ppf =
  let table = Telemetry.self_time_table () in
  let hists = Telemetry.histogram_snapshot () in
  let total_self = List.fold_left (fun acc (_, _, _, s) -> acc +. s) 0. table in
  Fmt.pf ppf "@[<v>-- profile (by self time)@,";
  Fmt.pf ppf "%-34s %8s %10s %10s %6s %10s %10s %10s@," "span" "calls" "total"
    "self" "self%" "p50" "p90" "p99";
  List.iter
    (fun (name, calls, total, self) ->
      let q p =
        match List.assoc_opt name hists with
        | Some hs -> Telemetry.dur_to_string (Telemetry.quantile hs p)
        | None -> "n/a"
      in
      Fmt.pf ppf "%-34s %8d %10s %10s %5.1f%% %10s %10s %10s@," name calls
        (Telemetry.dur_to_string total)
        (Telemetry.dur_to_string self)
        (100. *. self /. Float.max total_self 1e-12)
        (q 0.5) (q 0.9) (q 0.99))
    table;
  Fmt.pf ppf "@]@."

(* Budget-exhaustion forensics: where was the process when the budget ran
   out, and who ate it.  Printed on stderr next to the exit-3 diagnostic
   whenever profiling is on. *)
let print_exhaustion_forensics () =
  if Telemetry.profiling () then begin
    (match Telemetry.exhaustion_snapshot () with
    | Some (reason, stack) ->
        Fmt.epr "cindtool: exhausted (%s) inside: %s@." reason
          (match stack with
          | [] -> "(no live span)"
          | st -> String.concat " < " st)
    | None -> ());
    match Telemetry.self_time_table () with
    | [] -> ()
    | table ->
        Fmt.epr "cindtool: top spans by self time:@.";
        List.iteri
          (fun i (name, calls, total, self) ->
            if i < 3 then
              Fmt.epr "  %-34s calls=%-6d total=%s self=%s@." name calls
                (Telemetry.dur_to_string total)
                (Telemetry.dur_to_string self))
          table
  end

let load path =
  match Parser.parse_file path with
  | Ok doc -> doc
  | Error msg ->
      Fmt.epr "%s: %s@." path msg;
      exit exit_usage

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Constraint file (.cind).")

(* --- parse ---------------------------------------------------------------- *)

let parse_cmd =
  let run path =
    let doc = load path in
    Fmt.pr "%s" (Printer.document_to_string doc);
    Fmt.pr "@.-- ok: %d relation(s), %d CFD(s), %d CIND(s), %d instance(s)@."
      (List.length (Db_schema.relations doc.Parser.schema))
      (List.length doc.sigma.Sigma.cfds)
      (List.length doc.sigma.Sigma.cinds)
      (List.length doc.instances);
    exit_ok
  in
  Cmd.v
    (Cmd.info "parse" ~exits ~doc:"Parse, validate and pretty-print a constraint file.")
    Term.(const run $ file_arg)

(* --- normalize ------------------------------------------------------------ *)

let normalize_cmd =
  let run path =
    let doc = load path in
    let nf = Sigma.normalize doc.Parser.sigma in
    Fmt.pr "# normal forms (Prop 3.1 / CFD normal form)@.";
    List.iter (fun c -> Fmt.pr "%a@." Cfd.pp_nf c) nf.Sigma.ncfds;
    List.iter (fun c -> Fmt.pr "%a@." Cind.pp_nf c) nf.Sigma.ncinds;
    exit_ok
  in
  Cmd.v
    (Cmd.info "normalize" ~exits ~doc:"Print the normal form of every constraint.")
    Term.(const run $ file_arg)

(* --- check-consistency ------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed for the heuristics.")

let k_arg =
  Arg.(value & opt int 20 & info [ "k" ] ~docv:"K" ~doc:"Number of random runs (Fig 5).")

let backend_arg =
  let backends =
    [ ("chase", Cind_api.Chase_backend); ("sat", Cind_api.Sat_backend) ]
  in
  Arg.(
    value
    & opt (enum backends) Cind_api.Chase_backend
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:"CFD_Checking backend inside preProcessing: $(b,chase) or $(b,sat).")

let batch_arg =
  Arg.(
    value
    & opt_all file []
    & info [ "batch" ] ~docv:"FILE"
        ~doc:
          "Additional constraint file to check in the same batch \
           (repeatable).  All files must declare the same schema.  The \
           batch shares one seed split, one interner warm-up and one \
           work-stealing domain pool across files; each file's verdict \
           is identical to a standalone $(b,check) of that file with its \
           split of the seed, and the exit code is the worst per-file \
           code.")

let chunk_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chunk" ] ~docv:"N"
        ~doc:
          "Batch items per work-stealing task (default: chosen by the \
           cost model from the batch size and $(b,--jobs)).  Only \
           meaningful with $(b,--batch).")

let print_check_verdict = function
  | Cind_api.Yes (Some db) ->
      Fmt.pr "consistent — witness database:@.%a@." Database.pp db;
      exit_ok
  | Cind_api.Yes None ->
      Fmt.pr "consistent@.";
      exit_ok
  | Cind_api.No ->
      Fmt.pr "inconsistent (dependency-graph reduction emptied the graph)@.";
      exit_negative
  | Cind_api.Unknown Guard.Fuel when Guard.state (Guard.ambient ()) = None ->
      (* the paper's own K / K_CFD budgets ran out; no external limit hit *)
      Fmt.pr "unknown — no witness found within the budgets (heuristic)@.";
      exit_undetermined
  | Cind_api.Unknown r ->
      Fmt.pr "unknown — search cut short: %s@." (Guard.reason_to_string r);
      Fmt.epr "cindtool: resource budget exhausted (%s)@." (Guard.reason_to_string r);
      print_exhaustion_forensics ();
      exit_undetermined

let check_run path batch chunk seed k backend =
  let paths = path :: batch in
  let docs = List.map load paths in
  let doc0 = List.hd docs in
  let schema = doc0.Parser.schema in
  let schema_repr = Fmt.str "%a" Db_schema.pp in
  let s0 = schema_repr schema in
  List.iter2
    (fun p d ->
      if not (String.equal (schema_repr d.Parser.schema) s0) then (
        Fmt.epr "cindtool: --batch: %s declares a different schema than %s@." p
          path;
        exit exit_usage))
    paths docs;
  let nfs = List.map (fun d -> Sigma.normalize d.Parser.sigma) docs in
  match nfs with
  | [ nf ] ->
      (* standalone call: preserves the historical seed -> verdict mapping
         exactly (a 1-item batch would consume [Rng.split_n rng 1]) *)
      print_check_verdict
        (Cind_api.check ~backend ~k ~rng:(Rng.make seed) schema nf)
  | nfs ->
      let verdicts =
        Cind_api.check_many ~backend ?chunk ~k ~rng:(Rng.make seed) schema nfs
      in
      List.fold_left2
        (fun code p v ->
          Fmt.pr "== %s@." p;
          max code (print_check_verdict v))
        exit_ok paths verdicts

let check_term =
  Term.(
    const check_run $ file_arg $ batch_arg $ chunk_arg $ seed_arg $ k_arg
    $ backend_arg)

let check_doc = "Check the consistency of the constraint set (Checking, Fig 9)."

let check_cmd = Cmd.v (Cmd.info "check" ~exits ~doc:check_doc) check_term

let check_consistency_cmd =
  (* same command under its long name, used throughout the documentation *)
  Cmd.v (Cmd.info "check-consistency" ~exits ~doc:check_doc) check_term

(* --- violations ------------------------------------------------------------ *)

let repair_arg =
  Arg.(value & flag & info [ "repair" ] ~doc:"Apply suggested repairs and re-check.")

let csv_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "csv" ] ~docv:"REL=FILE"
        ~doc:
          "Load relation $(i,REL) from CSV file $(i,FILE) (repeatable), \
           replacing any instance declared in the constraint file.  \
           Malformed CSV aborts with exit code 2 and a file:line \
           diagnostic.")

(* REL=FILE pairs from --csv, loaded against the schema; any error is fatal
   with a file:line position. *)
let load_csvs schema specs db =
  List.fold_left
    (fun db spec ->
      match String.index_opt spec '=' with
      | None ->
          Fmt.epr "cindtool: --csv expects REL=FILE, got %S@." spec;
          exit exit_usage
      | Some i ->
          let rel = String.sub spec 0 i in
          let file = String.sub spec (i + 1) (String.length spec - i - 1) in
          let rel_schema =
            match Db_schema.find_opt schema rel with
            | Some s -> s
            | None ->
                Fmt.epr "cindtool: --csv: no relation %S in the schema@." rel;
                exit exit_usage
          in
          (match Csv.load rel_schema file with
          | Ok r -> Database.set_relation db r
          | Error msg ->
              Fmt.epr "%s: %s@." file msg;
              exit exit_usage
          | exception Sys_error msg ->
              Fmt.epr "cindtool: %s@." msg;
              exit exit_usage))
    db specs

let violations_cmd =
  let run path repair csvs =
    let doc = load path in
    let db =
      match Parser.database doc with
      | Ok db -> db
      | Error msg ->
          Fmt.epr "instance error: %s@." msg;
          exit exit_usage
    in
    let db = load_csvs doc.Parser.schema csvs db in
    let nf = Sigma.normalize doc.Parser.sigma in
    let report = Conddep_cleaning.Report.build db nf in
    Fmt.pr "%a@." Conddep_cleaning.Report.pp report;
    if Conddep_cleaning.Report.count report = 0 then exit_ok
    else if repair then begin
      let repaired = Conddep_cleaning.Repair.repair ~max_rounds:8 doc.Parser.schema nf db in
      let left = List.length (Conddep_cleaning.Detect.detect repaired nf) in
      Fmt.pr "after repair: %d violation(s) left@." left;
      Fmt.pr "%a@." Database.pp repaired;
      if left = 0 then exit_ok else exit_negative
    end
    else exit_negative
  in
  Cmd.v
    (Cmd.info "violations" ~exits
       ~doc:
         "Detect (and optionally repair) violations in the declared or \
          CSV-loaded instances.")
    Term.(const run $ file_arg $ repair_arg $ csv_arg)

(* --- implies ----------------------------------------------------------------- *)

let goal_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"GOAL" ~doc:"Name of the CIND to test against the remaining ones.")

let implies_cmd =
  let run path goal =
    let doc = load path in
    let nf = Sigma.normalize doc.Parser.sigma in
    let goals, rest =
      List.partition (fun c -> String.equal c.Cind.nf_name goal) nf.Sigma.ncinds
    in
    match goals with
    | [] ->
        Fmt.epr "no CIND named %S in %s@." goal path;
        exit_usage
    | goals ->
        (* one Σ compilation shared across all goals via the batch form *)
        let verdicts =
          Cind_api.implies_many doc.Parser.schema ~sigma:rest goals
        in
        List.fold_left2
          (fun code g v ->
            match v with
            | Cind_api.Yes _ ->
                Fmt.pr "%a@.  IS implied by the remaining CINDs@." Cind.pp_nf g;
                code
            | Cind_api.No ->
                Fmt.pr "%a@.  is NOT implied by the remaining CINDs@." Cind.pp_nf g;
                max code exit_negative
            | Cind_api.Unknown Guard.Fuel
              when Guard.state (Guard.ambient ()) = None ->
                (* the procedure's own max_states cap, no external limit *)
                Fmt.pr "%a@.  undetermined: search budget exceeded@." Cind.pp_nf g;
                max code exit_undetermined
            | Cind_api.Unknown r ->
                Fmt.pr "%a@.  undetermined: %s@." Cind.pp_nf g
                  (Guard.reason_to_string r);
                Fmt.epr "cindtool: resource budget exhausted (%s)@."
                  (Guard.reason_to_string r);
                print_exhaustion_forensics ();
                max code exit_undetermined)
          exit_ok goals verdicts
  in
  Cmd.v
    (Cmd.info "implies" ~exits
       ~doc:
         "Decide whether the named CIND is implied by the file's other CINDs \
          (exact procedure, Thm 3.4).")
    Term.(const run $ file_arg $ goal_arg)

(* --- prove ------------------------------------------------------------------- *)

let prove_cmd =
  let run path goal =
    let doc = load path in
    let nf = Sigma.normalize doc.Parser.sigma in
    let goals, rest =
      List.partition (fun c -> String.equal c.Cind.nf_name goal) nf.Sigma.ncinds
    in
    match goals with
    | [] ->
        Fmt.epr "no CIND named %S in %s@." goal path;
        exit_usage
    | g :: _ -> (
        match Proof_search.derive doc.Parser.schema ~sigma:rest g with
        | Some proof -> (
            Fmt.pr "derivation of %a from the remaining CINDs:@.%a" Cind.pp_nf g
              Inference.pp_proof proof;
            match Inference.proves doc.Parser.schema ~sigma:rest proof g with
            | Ok _ ->
                Fmt.pr "(re-checked by the proof verifier)@.";
                exit_ok
            | Error msg ->
                Fmt.epr "internal error: emitted proof rejected: %s@." msg;
                exit_undetermined)
        | None ->
            Fmt.pr "%a is NOT implied by the remaining CINDs@." Cind.pp_nf g;
            exit_negative
        | exception Invalid_argument msg ->
            Fmt.epr "%s@." msg;
            exit_usage)
  in
  Cmd.v
    (Cmd.info "prove" ~exits
       ~doc:
         "Derive the named CIND from the file's other CINDs as an explicit \
          CIND1-CIND6 proof (infinite-domain attributes only, Thm 3.5).")
    Term.(const run $ file_arg $ goal_arg)

(* --- logic ------------------------------------------------------------------- *)

let logic_cmd =
  let run path =
    let doc = load path in
    let nf = Sigma.normalize doc.Parser.sigma in
    Fmt.pr "# first-order readings (TGDs / EGDs with constants)@.";
    List.iter
      (fun c ->
        Fmt.pr "@[<v2>-- %s:@,%a@]@." c.Cfd.nf_name Logic.pp
          (Logic.cfd_to_formula doc.Parser.schema c))
      nf.Sigma.ncfds;
    List.iter
      (fun c ->
        Fmt.pr "@[<v2>-- %s:@,%a@]@." c.Cind.nf_name Logic.pp
          (Logic.cind_to_formula doc.Parser.schema c))
      nf.Sigma.ncinds;
    exit_ok
  in
  Cmd.v
    (Cmd.info "logic" ~exits
       ~doc:"Print every constraint as a first-order sentence (TGD/EGD form).")
    Term.(const run $ file_arg)

(* --- cover ------------------------------------------------------------------- *)

let cover_cmd =
  let run path =
    let doc = load path in
    let nf = Sigma.normalize doc.Parser.sigma in
    let cinds = Minimal_cover.cind_cover doc.Parser.schema (Minimal_cover.dedup_cinds nf.Sigma.ncinds) in
    let cfds = Minimal_cover.cfd_cover doc.Parser.schema (Minimal_cover.dedup_cfds nf.Sigma.ncfds) in
    Fmt.pr "# minimal cover: %d of %d CFDs, %d of %d CINDs retained@."
      (List.length cfds) (List.length nf.Sigma.ncfds) (List.length cinds)
      (List.length nf.Sigma.ncinds);
    List.iter (fun c -> Fmt.pr "%a@." Cfd.pp_nf c) cfds;
    List.iter (fun c -> Fmt.pr "%a@." Cind.pp_nf c) cinds;
    exit_ok
  in
  Cmd.v
    (Cmd.info "cover" ~exits
       ~doc:"Remove constraints implied by the rest (budgeted minimal cover).")
    Term.(const run $ file_arg)

(* --- witness ----------------------------------------------------------------- *)

let witness_cmd =
  let run path =
    let doc = load path in
    let nf = Sigma.normalize doc.Parser.sigma in
    match Witness.database doc.Parser.schema nf.Sigma.ncinds with
    | db ->
        Fmt.pr "Theorem 3.2 witness (%d tuples):@.%a@." (Database.total_tuples db)
          Database.pp db;
        exit_ok
    | exception Witness.Too_large n ->
        Fmt.epr "witness would have %d tuples; aborting@." n;
        exit_undetermined
  in
  Cmd.v
    (Cmd.info "witness" ~exits
       ~doc:"Build the cross-product witness database for the file's CINDs (Thm 3.2).")
    Term.(const run $ file_arg)

(* --- gen --------------------------------------------------------------------- *)

(* Random schema + workload in .cind syntax (the experimental setting of
   Section 6), mainly to produce reproducible hard inputs for the
   robustness smoke tests. *)
let gen_cmd =
  let run seed relations constraints profile =
    let rng = Rng.make seed in
    let sconfig =
      match profile with
      | `Random | `Consistent ->
          { Conddep_generator.Schema_gen.default with num_relations = relations }
      | `Needle ->
          (* every attribute finite with tiny domains, as in the Fig 10(b)
             experiment: the valuation space is dense with conflicts *)
          (* arities and domains kept small enough that each relation's
             secret is findable within K_CFD tries (so preProcessing does
             not just prune the graph) while the joint valuation across
             relations stays out of reach of random search *)
          {
            Conddep_generator.Schema_gen.num_relations = relations;
            min_arity = 3;
            max_arity = 5;
            finite_ratio = 1.0;
            finite_dom_min = 2;
            finite_dom_max = 2;
          }
    in
    let schema = Conddep_generator.Schema_gen.generate rng sconfig in
    let wconfig =
      { Conddep_generator.Workload.default with num_constraints = constraints }
    in
    let nf =
      match profile with
      | `Random -> Conddep_generator.Workload.random rng wconfig schema
      | `Consistent -> Conddep_generator.Workload.consistent rng wconfig schema
      | `Needle ->
          (* The Fig 10(b) needle family — per relation (almost) one
             satisfying finite-domain assignment, defeating bounded-K_CFD
             valuation search — joined with pattern-free CINDs so that every
             witness tuple triggers an inclusion and preProcessing cannot
             settle the answer on its own.  Deliberately adversarial: used
             by the robustness smoke tests to exercise --timeout / --fuel. *)
          let needles = Conddep_generator.Workload.needle_cfds rng schema in
          let cind_config = { wconfig with max_pattern = 0 } in
          let n_cinds = max 1 (constraints / 4) in
          let cinds =
            List.init n_cinds
              (Conddep_generator.Workload.gen_cind rng cind_config schema
                 ~consistent:false)
          in
          { needles with Sigma.ncinds = cinds }
    in
    let doc =
      { Parser.schema; sigma = Sigma.of_nf nf; instances = [] }
    in
    Fmt.pr "%s" (Printer.document_to_string doc);
    exit_ok
  in
  let profile_arg =
    Arg.(
      value
      & opt (enum [ ("random", `Random); ("consistent", `Consistent); ("needle", `Needle) ]) `Random
      & info [ "profile" ] ~docv:"PROFILE"
          ~doc:
            "Workload family: $(b,random) (may conflict), $(b,consistent) \
             (satisfiable by construction), or $(b,needle) (adversarial: \
             near-unique satisfying valuations, defeats bounded random \
             search).")
  in
  Cmd.v
    (Cmd.info "gen" ~exits
       ~doc:
         "Generate a random schema and constraint set (Section 6 workload) \
          in .cind syntax on stdout.")
    Term.(
      const run $ seed_arg
      $ Arg.(
          value & opt int 20
          & info [ "relations" ] ~docv:"N" ~doc:"Number of relations.")
      $ Arg.(
          value & opt int 100
          & info [ "constraints" ] ~docv:"N" ~doc:"Number of constraints.")
      $ profile_arg)

(* --- sat ---------------------------------------------------------------------- *)

(* Debug entry point for the SAT core: solve a DIMACS file directly, so a
   solver regression found in the field can be reproduced from an exported
   instance without rebuilding the CFD encoding around it.  Output follows
   the SAT-competition convention (`s` status line, `v` model line). *)
let sat_cmd =
  let module Solver = Conddep_sat.Solver in
  let module Cnf = Conddep_sat.Cnf in
  let run path =
    let text =
      match In_channel.with_open_text path In_channel.input_all with
      | s -> s
      | exception Sys_error msg ->
          Fmt.epr "cindtool: %s@." msg;
          exit exit_usage
    in
    match Conddep_sat.Dimacs.parse text with
    | Error msg ->
        Fmt.epr "%s: %s@." path msg;
        exit_usage
    | Ok cnf -> (
        Fmt.pr "c %s: %d vars, %d clauses, engine=%s@." (Filename.basename path)
          (Cnf.num_vars cnf) (Cnf.num_clauses cnf)
          (Solver.mode_to_string (Solver.default_mode ()));
        match Solver.solve cnf with
        | Solver.Sat model ->
            (* Check the model before trusting it: a wrong model here is a
               solver bug, and this subcommand exists to catch those. *)
            if not (Cnf.eval model cnf) then begin
              Fmt.epr "cindtool: internal error: model does not satisfy %s@." path;
              exit exit_usage
            end;
            Fmt.pr "s SATISFIABLE@.";
            let buf = Buffer.create 256 in
            for v = 1 to Cnf.num_vars cnf do
              Buffer.add_string buf (string_of_int (if model.(v) then v else -v));
              Buffer.add_char buf ' '
            done;
            Buffer.add_char buf '0';
            Fmt.pr "v %s@." (Buffer.contents buf);
            exit_ok
        | Solver.Unsat ->
            Fmt.pr "s UNSATISFIABLE@.";
            exit_negative
        | Solver.Unknown r ->
            Fmt.pr "s UNKNOWN@.";
            Fmt.epr "cindtool: resource budget exhausted (%s)@."
              (Guard.reason_to_string r);
            exit_undetermined)
  in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"DIMACS CNF file.")
  in
  Cmd.v
    (Cmd.info "sat" ~exits
       ~doc:
         "Solve a DIMACS CNF file with the built-in SAT solver (CDCL by \
          default; $(b,--no-sat-cdcl) selects the chronological ablation \
          engine).  Exit 0 with a verified $(b,v) model line when \
          satisfiable, 1 when unsatisfiable, 3 when a budget \
          ($(b,--timeout), $(b,--fuel)) ran out first.")
    Term.(const run $ file)

(* --- session ------------------------------------------------------------------ *)

(* Line-oriented driver over Cind_session: the same edit/query loop the
   bench measures and a future daemon would serve.  One verdict per query
   line on stdout; the script's worst query verdict is the exit code
   (uniform with `check`). *)
let session_cmd =
  let run path seed backend no_cache =
    let sess = ref None in
    let pool :
        (string, [ `Cind of Cind.nf list | `Cfd of Cfd.nf list ]) Hashtbl.t =
      Hashtbl.create 16
    in
    let lineno = ref 0 in
    let fail msg =
      Fmt.epr "%s:%d: %s@." path !lineno msg;
      exit exit_usage
    in
    let require_session () =
      match !sess with
      | Some s -> s
      | None -> fail "no session yet: start the script with `load FILE`"
    in
    let named name =
      match Hashtbl.find_opt pool name with
      | Some c -> c
      | None -> fail (Printf.sprintf "no constraint named %S in the loaded file" name)
    in
    let worst = ref exit_ok in
    let note = function
      | Cind_api.Yes _ -> ()
      | Cind_api.No -> worst := max !worst exit_negative
      | Cind_api.Unknown _ -> worst := max !worst exit_undetermined
    in
    (* Implication of a multi-row CIND is the conjunction over its normal
       forms; a definitive "not implied" beats an undetermined row. *)
    let conj a b =
      match (a, b) with
      | Cind_api.No, _ | _, Cind_api.No -> Cind_api.No
      | Cind_api.Unknown r, _ | _, Cind_api.Unknown r -> Cind_api.Unknown r
      | Cind_api.Yes _, Cind_api.Yes _ -> Cind_api.Yes None
    in
    let handle line =
      let words =
        String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> ()
      | w :: _ when String.length w > 0 && w.[0] = '#' -> ()
      | [ "load"; file ] ->
          if !sess <> None then fail "load: session already started";
          let doc = load file in
          let s =
            Cind_session.create ~backend ~cache:(not no_cache) ~seed
              doc.Parser.schema
          in
          List.iter
            (fun (c : Cind.t) ->
              Hashtbl.replace pool c.Cind.name (`Cind (Cind.normalize c)))
            doc.Parser.sigma.Sigma.cinds;
          List.iter
            (fun (f : Cfd.t) ->
              Hashtbl.replace pool f.Cfd.name (`Cfd (Cfd.normalize f)))
            doc.Parser.sigma.Sigma.cfds;
          List.iter
            (fun (rel, tuples) -> Cind_session.insert_tuples s ~rel tuples)
            doc.Parser.instances;
          sess := Some s
      | [ "add"; name ] -> (
          let s = require_session () in
          match named name with
          | `Cind nfs -> List.iter (Cind_session.add_cind s) nfs
          | `Cfd nfs -> List.iter (Cind_session.add_cfd s) nfs)
      | [ "remove"; name ] -> (
          let s = require_session () in
          match named name with
          | `Cind nfs -> List.iter (Cind_session.remove_cind s) nfs
          | `Cfd nfs -> List.iter (Cind_session.remove_cfd s) nfs)
      | "insert" :: rel :: rest -> (
          let s = require_session () in
          let values =
            String.concat " " rest |> String.split_on_char ','
            |> List.map String.trim
            |> List.filter (fun v -> v <> "")
            |> List.map Value.of_string
          in
          if values = [] then fail "insert expects REL v1,v2,...";
          match Cind_session.insert_tuples s ~rel [ Tuple.make values ] with
          | () -> ()
          | exception Invalid_argument msg -> fail msg)
      | [ "check" ] ->
          let v = Cind_session.check (require_session ()) in
          note v;
          Fmt.pr "check: %a@." Cind_api.pp_verdict v
      | [ "consistent"; rel ] ->
          let v = Cind_session.consistent (require_session ()) ~rel in
          note v;
          Fmt.pr "consistent %s: %a@." rel Cind_api.pp_verdict v
      | [ "implies"; name ] -> (
          let s = require_session () in
          match named name with
          | `Cfd _ -> fail "implies: the goal must be a CIND"
          | `Cind nfs ->
              let v =
                List.fold_left
                  (fun acc nf -> conj acc (Cind_session.implies s nf))
                  (Cind_api.Yes None) nfs
              in
              note v;
              Fmt.pr "implies %s: %a@." name Cind_api.pp_verdict v)
      | [ "holds" ] ->
          let b = Cind_session.holds (require_session ()) in
          if not b then worst := max !worst exit_negative;
          Fmt.pr "holds: %b@." b
      | [ "stats" ] ->
          let st = Cind_session.stats (require_session ()) in
          Fmt.pr "stats: hits=%d misses=%d invalidations=%d entries=%d@."
            st.Cind_session.hits st.misses st.invalidations st.entries
      | w :: _ -> fail (Printf.sprintf "unrecognized command %S" w)
    in
    let ic =
      match open_in path with
      | ic -> ic
      | exception Sys_error msg ->
          Fmt.epr "%s@." msg;
          exit exit_usage
    in
    (try
       while true do
         incr lineno;
         handle (input_line ic)
       done
     with End_of_file -> close_in ic);
    (match !sess with
    | Some s ->
        let st = Cind_session.stats s in
        Fmt.epr "cindtool: session: %d hit(s), %d miss(es), %d invalidation(s), %d live entries@."
          st.Cind_session.hits st.misses st.invalidations st.entries
    | None -> ());
    !worst
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the verdict cache and warm-start state: every query \
             recomputes from scratch (the oracle the property tests and \
             the bench compare the cached session against).  Verdicts are \
             identical either way; only wall-clock time changes.")
  in
  Cmd.v
    (Cmd.info "session" ~exits
       ~doc:
         "Run a line-oriented edit/query script over an incremental \
          re-checking session (fingerprint-keyed verdict cache with \
          read-set invalidation)."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "The script starts with $(b,load) $(i,FILE), which fixes the \
              schema, loads the file's declared instances into the session \
              database, and makes the file's named constraints available \
              as an edit pool — the session's Σ starts empty.  Subsequent \
              lines edit the session ($(b,add)/$(b,remove) $(i,NAME) for \
              constraints from the pool, $(b,insert) $(i,REL) \
              $(i,v1,v2,...) for tuples) or query it ($(b,check), \
              $(b,consistent) $(i,REL), $(b,implies) $(i,NAME), \
              $(b,holds), $(b,stats)); blank lines and $(b,#) comments \
              are skipped.  Each query prints one verdict line on stdout.";
           `P
             "Query verdicts are cached under structural fingerprints of \
              the target and the dependency set, together with the read \
              set the derivation reported; an edit dirties only cache \
              entries whose read set intersects it, and every hit is \
              verdict-bit-identical to recomputing from scratch.  The \
              cache counters are exported as $(b,incremental.*) telemetry \
              (visible via $(b,--metrics) and $(b,cindtool stats)).";
           `P
             "Exit code: the worst query verdict in the script (0 all \
              yes, 1 a definitive no, 3 an undetermined answer), or 2 on \
              a script error.";
         ])
    Term.(const run $ file_arg $ seed_arg $ backend_arg $ no_cache_arg)

(* --- stats ------------------------------------------------------------------- *)

(* Aggregate a metrics JSON-lines file written by --metrics: last value per
   counter/histogram (flushes are cumulative), span events summed. *)
let stats_cmd =
  let run path =
    match open_in path with
    | exception Sys_error msg ->
        Fmt.epr "%s@." msg;
        exit_usage
    | ic ->
        let counters = Hashtbl.create 64 in
        let gauges = Hashtbl.create 16 in
        let hists = Hashtbl.create 32 in
        let spans = Hashtbl.create 32 in
        let malformed = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match Telemetry.parse_event line with
               | Some (Telemetry.Counter_event { name; value }) ->
                   Hashtbl.replace counters name value
               | Some (Telemetry.Gauge_event { name; value }) ->
                   Hashtbl.replace gauges name value
               | Some (Telemetry.Histogram_event { name; stats }) ->
                   Hashtbl.replace hists name stats
               | Some (Telemetry.Span_event { name; dur_s; _ }) ->
                   let n, s =
                     Option.value ~default:(0, 0.) (Hashtbl.find_opt spans name)
                   in
                   Hashtbl.replace spans name (n + 1, s +. dur_s)
               | None -> incr malformed
           done
         with End_of_file -> close_in ic);
        let sorted tbl =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        Fmt.pr "@[<v># metrics from %s@," path;
        Fmt.pr "@,-- counters@,";
        List.iter (fun (name, v) -> Fmt.pr "%-44s %d@," name v) (sorted counters);
        if Hashtbl.length gauges > 0 then begin
          Fmt.pr "@,-- gauges@,";
          List.iter (fun (name, v) -> Fmt.pr "%-44s %d@," name v) (sorted gauges)
        end;
        Fmt.pr "@,-- histograms (durations)@,";
        List.iter
          (fun (name, (hs : Telemetry.histogram_stats)) ->
            Fmt.pr
              "%-44s count=%-8d sum=%.6fs mean=%.6fs p50=%s p90=%s p99=%s@,"
              name hs.Telemetry.hs_count hs.hs_sum
              (if hs.hs_count = 0 then 0. else hs.hs_sum /. float_of_int hs.hs_count)
              (Telemetry.dur_to_string (Telemetry.quantile hs 0.5))
              (Telemetry.dur_to_string (Telemetry.quantile hs 0.9))
              (Telemetry.dur_to_string (Telemetry.quantile hs 0.99)))
          (sorted hists);
        if Hashtbl.length spans > 0 then begin
          Fmt.pr "@,-- spans@,";
          List.iter
            (fun (name, (n, s)) -> Fmt.pr "%-44s count=%-8d total=%.6fs@," name n s)
            (sorted spans)
        end;
        if !malformed > 0 then Fmt.pr "@,(%d unparseable line(s) skipped)@," !malformed;
        Fmt.pr "@]@.";
        exit_ok
  in
  Cmd.v
    (Cmd.info "stats" ~exits
       ~doc:
         "Summarize a metrics JSON-lines file produced by $(b,--metrics) \
          (counters, histograms, span totals).")
    Term.(
      const run
      $ Arg.(
          required
          & pos 0 (some file) None
          & info [] ~docv:"METRICS" ~doc:"JSON-lines metrics file."))

(* --- chaos -------------------------------------------------------------------- *)

(* Randomized fault-schedule sweep over the Guard probe registry: every
   round checks a seeded workload twice — fault-free, then with the
   schedule's probes armed — and asserts the faulty verdict is identical
   or a typed Unknown.  Failing schedules are dumped as replayable
   .chaos.json files (raw and shrunk). *)
let chaos_cmd =
  let run seed rounds relations constraints out_dir replay =
    (* retry counters feed the per-round report *)
    Telemetry.enable ();
    let policy = Supervise.Policy.ambient () in
    match replay with
    | Some file -> (
        match Chaos.load ~file with
        | Error msg ->
            Fmt.epr "cindtool: %s: %s@." file msg;
            exit_usage
        | Ok sched ->
            let r = Chaos.round ~policy sched in
            Fmt.pr "%a@." Chaos.pp_round r;
            if r.Chaos.r_ok then exit_ok else exit_negative)
    | None ->
        let report =
          Chaos.sweep ~policy ~relations ~constraints ~seed ~rounds ()
        in
        List.iter (fun r -> Fmt.pr "%a@." Chaos.pp_round r) report.Chaos.rounds;
        Fmt.pr
          "-- chaos: %d round(s): %d identical, %d degraded-to-unknown, %d \
           failure(s)@."
          rounds report.Chaos.survived report.Chaos.unknowns
          (List.length report.Chaos.failures);
        List.iter
          (fun (r : Chaos.round_report) ->
            let sched = r.Chaos.r_schedule in
            let base =
              Filename.concat out_dir
                (Printf.sprintf "chaos_%d_round%d" seed sched.Chaos.s_round)
            in
            Chaos.save ~file:(base ^ ".chaos.json") sched;
            Chaos.save ~file:(base ^ "_min.chaos.json")
              (Chaos.shrink ~policy sched);
            Fmt.epr
              "cindtool: chaos: verdict changed in round %d; schedule dumped \
               to %s.chaos.json (shrunk: %s_min.chaos.json)@."
              sched.Chaos.s_round base base)
          report.Chaos.failures;
        if report.Chaos.failures = [] then exit_ok else exit_negative
  in
  Cmd.v
    (Cmd.info "chaos" ~exits
       ~doc:
         "Sweep randomized fault schedules over the probe registry and \
          assert every verdict is identical to the fault-free baseline or a \
          typed unknown.  Failing schedules are dumped as replayable \
          $(b,.chaos.json) files (raw and shrunk); replay one with \
          $(b,--replay) $(i,FILE).  Exit 0 when every round holds, 1 \
          otherwise."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Each round draws a seeded random workload, records the \
              fault-free verdict (witness included), then re-runs the same \
              check with 1-3 probe sites armed to fail after a random number \
              of hits, a random number of times (transient faults retries \
              can get past, or permanent ones).  The supervised run must \
              return the bit-identical verdict or degrade to a typed \
              unknown; a $(i,different) definitive answer fails the round.  \
              The sweep honours the global $(b,--retries), \
              $(b,--no-degrade) and $(b,--jobs) flags.";
         ])
    Term.(
      const run $ seed_arg
      $ Arg.(
          value & opt int 25
          & info [ "rounds" ] ~docv:"N" ~doc:"Fault schedules to sweep.")
      $ Arg.(
          value & opt int 4
          & info [ "relations" ] ~docv:"N"
              ~doc:"Relations per generated workload.")
      $ Arg.(
          value & opt int 24
          & info [ "constraints" ] ~docv:"N"
              ~doc:"Constraints per generated workload.")
      $ Arg.(
          value & opt dir "."
          & info [ "out-dir" ] ~docv:"DIR"
              ~doc:"Directory for dumped .chaos.json schedules.")
      $ Arg.(
          value
          & opt (some file) None
          & info [ "replay" ] ~docv:"FILE"
              ~doc:
                "Replay one dumped schedule instead of sweeping; exit 0 if \
                 the verdict-identity property holds for it."))

(* --- profile ------------------------------------------------------------------ *)

(* `cindtool profile CMD ...` is intercepted before cmdliner dispatch (the
   wrapped command keeps its own positional grammar); this stub exists so
   the subcommand shows up in --help and `cindtool profile` alone gets a
   usage error instead of "unknown command". *)
let profile_stub_cmd =
  let run () =
    Fmt.epr
      "cindtool: profile expects a subcommand to run, e.g. `cindtool \
       profile check-consistency FILE`@.";
    exit_usage
  in
  Cmd.v
    (Cmd.info "profile" ~exits
       ~doc:
         "Run any other subcommand under the profiler and print a self-time \
          table (with p50/p90/p99 per span) on stderr at exit, e.g. \
          $(b,cindtool profile check-consistency FILE).  Combine with \
          $(b,--profile) $(i,FILE) to also export the trace.")
    Term.(const run $ const ())

(* --- global flags ------------------------------------------------------------ *)

(* --trace / --metrics FILE / --timeout SECS / --fuel N are global: they may
   appear before or after the subcommand name.  Cmdliner selects the
   subcommand from the first positional token, which would misread
   `--metrics out.jsonl check ...` (space-separated option values are
   ambiguous at selection time), so the flags are stripped from argv before
   cmdliner sees it. *)
type globals = {
  g_rest : string list;
  g_trace : bool;
  g_metrics : string option;
  g_profile : string option;
  g_timeout : float option;
  g_fuel : int option;
  g_jobs : int option;
  g_engine : Conddep_chase.Chase.engine option;
  g_sat_mode : Conddep_sat.Solver.mode option;
  g_retries : int option;
  g_no_degrade : bool;
}

(* The global --profile takes an output FILE whose extension picks the
   format (.json = Chrome trace, .folded = flamegraph stacks).  Claiming
   only those extensions also keeps it from shadowing `gen`'s own
   --profile PROFILE workload-family option. *)
let profile_file s =
  Filename.check_suffix s ".json" || Filename.check_suffix s ".folded"

let extract_globals argv =
  let split_eq prefix arg =
    let n = String.length prefix in
    if String.length arg > n && String.sub arg 0 n = prefix then
      Some (String.sub arg n (String.length arg - n))
    else None
  in
  let timeout_of s =
    match float_of_string_opt s with
    | Some t when t > 0. -> Ok (Some t)
    | _ -> Error (Printf.sprintf "--timeout expects a positive number of seconds, got %S" s)
  in
  let fuel_of s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok (Some n)
    | _ -> Error (Printf.sprintf "--fuel expects a positive step count, got %S" s)
  in
  let jobs_of s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok (Some n)
    | _ -> Error (Printf.sprintf "--jobs expects a positive domain count, got %S" s)
  in
  let engine_of s =
    match Conddep_chase.Chase.engine_of_string s with
    | Some e -> Ok (Some e)
    | None ->
        Error
          (Printf.sprintf "--chase-engine expects 'delta' or 'naive', got %S" s)
  in
  let retries_of s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok (Some n)
    | _ -> Error (Printf.sprintf "--retries expects a non-negative count, got %S" s)
  in
  let rec go g = function
    | [] -> Ok { g with g_rest = List.rev g.g_rest }
    | "--trace" :: rest -> go { g with g_trace = true } rest
    | "--profile" :: path :: rest when profile_file path ->
        go { g with g_profile = Some path } rest
    | [ "--metrics" ] -> Error "option --metrics needs an argument"
    | "--metrics" :: path :: rest -> go { g with g_metrics = Some path } rest
    | [ "--timeout" ] -> Error "option --timeout needs an argument"
    | "--timeout" :: secs :: rest -> (
        match timeout_of secs with
        | Ok t -> go { g with g_timeout = t } rest
        | Error _ as e -> e)
    | [ "--fuel" ] -> Error "option --fuel needs an argument"
    | "--fuel" :: n :: rest -> (
        match fuel_of n with
        | Ok f -> go { g with g_fuel = f } rest
        | Error _ as e -> e)
    | [ "--jobs" ] -> Error "option --jobs needs an argument"
    | "--jobs" :: n :: rest -> (
        match jobs_of n with
        | Ok j -> go { g with g_jobs = j } rest
        | Error _ as e -> e)
    | [ "--chase-engine" ] -> Error "option --chase-engine needs an argument"
    | "--chase-engine" :: name :: rest -> (
        match engine_of name with
        | Ok e -> go { g with g_engine = e } rest
        | Error _ as e -> e)
    | "--sat-cdcl" :: rest ->
        go { g with g_sat_mode = Some Conddep_sat.Solver.Cdcl } rest
    | "--no-sat-cdcl" :: rest ->
        go { g with g_sat_mode = Some Conddep_sat.Solver.Chrono } rest
    | "--no-degrade" :: rest -> go { g with g_no_degrade = true } rest
    | [ "--retries" ] -> Error "option --retries needs an argument"
    | "--retries" :: n :: rest -> (
        match retries_of n with
        | Ok r -> go { g with g_retries = r } rest
        | Error _ as e -> e)
    | arg :: rest -> (
        match split_eq "--metrics=" arg with
        | Some path -> go { g with g_metrics = Some path } rest
        | None
          when match split_eq "--profile=" arg with
               | Some path -> profile_file path
               | None -> false ->
            go { g with g_profile = split_eq "--profile=" arg } rest
        | None -> (
            match split_eq "--timeout=" arg with
            | Some secs -> (
                match timeout_of secs with
                | Ok t -> go { g with g_timeout = t } rest
                | Error _ as e -> e)
            | None -> (
                match split_eq "--fuel=" arg with
                | Some n -> (
                    match fuel_of n with
                    | Ok f -> go { g with g_fuel = f } rest
                    | Error _ as e -> e)
                | None -> (
                    match split_eq "--jobs=" arg with
                    | Some n -> (
                        match jobs_of n with
                        | Ok j -> go { g with g_jobs = j } rest
                        | Error _ as e -> e)
                    | None -> (
                        match split_eq "--chase-engine=" arg with
                        | Some name -> (
                            match engine_of name with
                            | Ok e -> go { g with g_engine = e } rest
                            | Error _ as e -> e)
                        | None -> (
                            match split_eq "--retries=" arg with
                            | Some n -> (
                                match retries_of n with
                                | Ok r -> go { g with g_retries = r } rest
                                | Error _ as e -> e)
                            | None ->
                                go { g with g_rest = arg :: g.g_rest } rest))))))
  in
  go
    {
      g_rest = [];
      g_trace = false;
      g_metrics = None;
      g_profile = None;
      g_timeout = None;
      g_fuel = None;
      g_jobs = None;
      g_engine = None;
      g_sat_mode = None;
      g_retries = None;
      g_no_degrade = false;
    }
    argv

let setup_telemetry ~trace ~metrics =
  if trace || metrics <> None then Telemetry.enable ();
  (* Interner table sizes as pull-based gauges: lib/relational cannot
     depend on telemetry, so the application registers the closures. *)
  Telemetry.register_gauge "interner.values"
    ~doc:"distinct values interned into the global id table"
    Interner.value_count;
  Telemetry.register_gauge "interner.symbols"
    ~doc:"distinct relation/attribute symbols interned"
    Interner.symbol_count;
  (* Store doublings: a counter, plus an instant marker on the growing
     domain's trace track when profiling (the copy-under-mutex hiccup is
     otherwise invisible). *)
  let m_growths =
    Telemetry.counter "interner.growths"
      ~doc:"interner store doublings (whole-table copies under the mutex)"
  in
  Interner.set_growth_hook (fun tname cap ->
      Telemetry.incr m_growths;
      Telemetry.instant (Printf.sprintf "interner.%s.grow:%d" tname cap));
  (match metrics with
  | Some path ->
      let oc = open_out path in
      Telemetry.set_sink (Telemetry.Jsonl oc);
      at_exit (fun () ->
          Telemetry.flush_metrics ();
          Telemetry.set_sink Telemetry.Null;
          close_out oc)
  | None -> if trace then Telemetry.set_sink (Telemetry.Pretty Fmt.stderr));
  if trace then at_exit (fun () -> Telemetry.pp_report Fmt.stderr ())

let setup_profiling ~profile ~table =
  if profile <> None || table then begin
    Telemetry.enable_profiling ();
    (* at_exit: registered after setup_telemetry's metrics flush, so these
       run first — the trace is written before the sink closes. *)
    (match profile with
    | Some path ->
        at_exit (fun () ->
            let oc = open_out path in
            if Filename.check_suffix path ".folded" then Telemetry.write_folded oc
            else Telemetry.write_chrome_trace oc;
            close_out oc)
    | None -> ());
    if table then at_exit (fun () -> pp_profile_table Fmt.stderr)
  end

let setup_guard ~timeout ~fuel =
  if timeout <> None || fuel <> None then
    Guard.set_ambient (Guard.make ?timeout_s:timeout ?fuel ())

(* --jobs sets the process-wide default that every ?jobs parameter
   (Checking.check, Random_checking.check, workload generation) inherits;
   verdicts and exit codes are identical at any jobs count for a fixed
   seed — only wall-clock changes. *)
let setup_jobs ~jobs =
  match jobs with
  | Some j -> Parallel.set_default_jobs j
  | None -> ()

(* --chase-engine sets the process-wide default every ?engine parameter
   inherits; both engines compute bit-identical results, so this is an
   ablation/debugging switch, not a semantic one. *)
let setup_engine ~engine =
  match engine with
  | Some e -> Conddep_chase.Chase.set_default_engine e
  | None -> ()

(* --sat-cdcl/--no-sat-cdcl set the process-wide default SAT engine every
   ?mode parameter inherits; both engines are complete and return identical
   verdicts (models may differ), so — like --chase-engine — this is an
   ablation/debugging switch, not a semantic one. *)
let setup_sat_mode ~sat_mode =
  match sat_mode with
  | Some m -> Conddep_sat.Solver.set_default_mode m
  | None -> ()

(* Unlike the library (whose default keeps supervision off so embedded
   callers see historical behaviour), the tool defaults to the supervised
   policy: transient faults are retried and the fallback ladder may step
   to slower verdict-identical paths.  --retries 0 --no-degrade restores
   the unsupervised library behaviour. *)
let setup_supervision ~retries ~no_degrade =
  let base = Supervise.Policy.supervised in
  Supervise.Policy.set_ambient
    {
      Supervise.Policy.retries =
        Option.value ~default:base.Supervise.Policy.retries retries;
      degrade = (not no_degrade) && base.Supervise.Policy.degrade;
    }

(* Every ladder step taken anywhere in the run, reported once at exit so
   a degraded-but-answered invocation is visible, not silent. *)
let report_degradations () =
  List.iter
    (fun d -> Fmt.epr "cindtool: degraded: %a@." Supervise.pp_degradation d)
    (Supervise.degradation_trail ())

(* --- main --------------------------------------------------------------------- *)

let () =
  let man =
    [
      `S Manpage.s_common_options;
      `P
        "$(b,--trace) (anywhere on the command line) enables telemetry with a \
         human-readable span trace on stderr and a counter report at exit.";
      `P
        "$(b,--metrics) $(i,FILE) (anywhere on the command line) enables \
         telemetry and writes span events plus a final counter/histogram \
         snapshot to $(i,FILE) as JSON-lines; summarize it with $(b,cindtool \
         stats) $(i,FILE).";
      `P
        "$(b,--timeout) $(i,SECS) (anywhere on the command line) bounds the \
         whole invocation by a wall-clock deadline; when it passes, the \
         command stops promptly, prints the reason on stderr and exits with \
         code 3.";
      `P
        "$(b,--fuel) $(i,N) (anywhere on the command line) bounds the whole \
         invocation by a deterministic step budget (decision-procedure \
         steps); exhaustion behaves like $(b,--timeout) but is reproducible \
         across machines.";
      `P
        "$(b,--jobs) $(i,N) (anywhere on the command line) sets the \
         process-wide domain count for the randomized consistency \
         heuristics (default 1, or the $(b,JOBS) environment variable): \
         $(b,check-consistency) fans its K random runs across the domains \
         and races the chase and SAT backends; $(b,gen) accepts the flag \
         like every global so generated-then-checked pipelines can pass it \
         uniformly (generation itself is deterministic from $(b,--seed)).  \
         Verdicts, witnesses and exit codes are identical to $(b,--jobs 1) \
         for a fixed seed; only wall-clock time changes.";
      `P
        "$(b,--profile) $(i,FILE) (anywhere on the command line) enables the \
         profiler and writes $(i,FILE) at exit: with a $(b,.json) extension, \
         a Chrome Trace Event file (open in chrome://tracing or Perfetto; \
         one track per worker domain under $(b,--jobs)); with $(b,.folded), \
         folded stacks for $(b,flamegraph.pl)/$(b,inferno).  The extension \
         is required — it selects the format (and keeps the flag distinct \
         from $(b,gen)'s own $(b,--profile) option).  See also the \
         $(b,profile) subcommand, which prints a self-time table instead.";
      `P
        "$(b,--chase-engine) $(i,ENGINE) (anywhere on the command line) \
         selects the chase fixpoint engine: $(b,delta) (default) drains \
         dirty-tuple worklists and re-checks only dependencies whose \
         left-hand relation was touched; $(b,naive) rescans every candidate \
         at each step (the ablation baseline).  Both engines follow the \
         same canonical operation schedule and produce bit-identical \
         verdicts, witnesses and exit codes at any $(b,--jobs) count; only \
         wall-clock time changes.";
      `P
        "$(b,--sat-cdcl) / $(b,--no-sat-cdcl) (anywhere on the command \
         line) select the SAT engine behind the consistency checkers and \
         the $(b,sat) subcommand: $(b,--sat-cdcl) (the default) is the \
         CDCL core — first-UIP clause learning, non-chronological \
         backjumping, EVSIDS branching, LBD-scored learned-clause \
         deletion; $(b,--no-sat-cdcl) falls back to the pre-learning \
         chronological search (the ablation baseline, mirroring \
         $(b,--chase-engine naive)).  Both engines are complete and return \
         identical satisfiability verdicts and exit codes; satisfying \
         models and wall-clock time may differ.";
      `P
        "$(b,--retries) $(i,N) (anywhere on the command line) allows up to \
         $(i,N) supervised re-runs of an operation that failed transiently \
         (an injected fault, a local allocation ceiling) before the \
         fallback ladder steps down.  Each re-run replays the same random \
         seed, so a successful retry returns the bit-identical verdict the \
         fault-free run would have produced.  Default 1; $(b,--retries 0) \
         disables retrying.  Definitive verdicts and deterministic budget \
         give-ups are never retried.";
      `P
        "$(b,--no-degrade) (anywhere on the command line) disables the \
         degradation ladder (parallel to sequential, delta chase to naive, \
         SAT to chase).  By default, when retries are exhausted the tool \
         steps down to the next slower verdict-identical path and reports \
         each step at exit as $(b,cindtool: degraded: ...) on stderr; with \
         this flag the failure surfaces immediately as an undetermined \
         answer (exit 3).";
    ]
  in
  let info =
    Cmd.info "cindtool" ~version:"1.0.0" ~exits ~man
      ~doc:"Reasoning about conditional inclusion and functional dependencies."
  in
  match extract_globals (List.tl (Array.to_list Sys.argv)) with
  | Error msg ->
      Fmt.epr "cindtool: %s@." msg;
      exit exit_usage
  | Ok g ->
      (* `profile CMD ...` wraps CMD under the profiler with a self-time
         table at exit; a bare `profile` falls through to the stub. *)
      let g, profile_table =
        match g.g_rest with
        | "profile" :: (_ :: _ as rest) -> ({ g with g_rest = rest }, true)
        | _ -> (g, false)
      in
      setup_telemetry ~trace:g.g_trace ~metrics:g.g_metrics;
      setup_profiling ~profile:g.g_profile ~table:profile_table;
      setup_guard ~timeout:g.g_timeout ~fuel:g.g_fuel;
      setup_jobs ~jobs:g.g_jobs;
      setup_engine ~engine:g.g_engine;
      setup_sat_mode ~sat_mode:g.g_sat_mode;
      setup_supervision ~retries:g.g_retries ~no_degrade:g.g_no_degrade;
      let argv = Array.of_list (Sys.argv.(0) :: g.g_rest) in
      let group =
        Cmd.group info
          [
            parse_cmd;
            normalize_cmd;
            check_cmd;
            check_consistency_cmd;
            violations_cmd;
            implies_cmd;
            prove_cmd;
            logic_cmd;
            cover_cmd;
            witness_cmd;
            gen_cmd;
            sat_cmd;
            session_cmd;
            stats_cmd;
            chaos_cmd;
            profile_stub_cmd;
          ]
      in
      (* No OCaml exception escapes: budget exhaustion anywhere in an engine
         is exit 3 with the structured reason on stderr; anything else is an
         internal error, exit 2. *)
      let code =
        (* The root span makes the profile tree account for the whole
           dispatch (parse + subcommand), so self times cover the run's
           wall clock rather than just the instrumented subtrees. *)
        try Telemetry.with_span "cindtool.main" (fun () -> Cmd.eval' ~catch:false ~argv group)
        with
        | Guard.Exhausted r ->
            Fmt.epr "cindtool: resource budget exhausted (%s)@."
              (Guard.reason_to_string r);
            print_exhaustion_forensics ();
            exit_undetermined
        | e ->
            Fmt.epr "cindtool: internal error: %s@." (Printexc.to_string e);
            exit_usage
      in
      report_degradations ();
      (* cmdliner's CLI-error code is 124; fold it into the uniform scheme *)
      exit (if code = 124 || code = 123 || code = 125 then exit_usage else code)
